"""Experiments E4/E5/E8 — Figures 3, 4, 5 and the directive-selection study.

The Laplace solver is compiled with its three candidate DISTRIBUTE/ALIGN
choices — (BLOCK,BLOCK), (BLOCK,*), (*,BLOCK) — on 4 and 8 processors, and for
every problem size both the interpreted (estimated) and simulated (measured)
execution times are produced.  From these the study answers the paper's two
questions: which directives should be selected (the distribution with the
lowest time), and whether the estimated times are accurate enough to make that
selection without ever running on the machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from ..distribution import ArrayDistribution
from ..explore import Campaign, ResultStore, ScenarioSpace, resolve_campaign_machine
from ..output.report import render_series_chart, render_table
from ..suite import get_entry, laplace_grid_shape
from ..system import Machine

LAPLACE_VARIANTS = ("block_block", "block_star", "star_block")
VARIANT_LABELS = {
    "block_block": "(Blk,Blk)",
    "block_star": "(Blk,*)",
    "star_block": "(*,Blk)",
}


@dataclass
class DistributionIllustration:
    """Figure 3: how each distribution carves the template over 4 processors."""

    variant: str
    label: str
    grid_shape: tuple[int, ...]
    owner_map: list[list[int]]       # owner rank of each (coarse) template cell

    def render(self) -> str:
        rows = ["".join(f" P{owner + 1}" for owner in row) for row in self.owner_map]
        return f"{self.label} on {len(set(sum(self.owner_map, [])))} procs:\n" + "\n".join(rows)


def illustrate_distributions(n: int = 8, nprocs: int = 4) -> list[DistributionIllustration]:
    """Reproduce Figure 3: the three Laplace data distributions on 4 processors."""
    out = []
    for variant in LAPLACE_VARIANTS:
        entry = get_entry(f"laplace_{variant}")
        grid_shape = laplace_grid_shape(variant, nprocs)
        compiled = entry.compile(n, nprocs, grid_shape)
        dist: ArrayDistribution = compiled.mapping.distribution_of("u")
        owner_map = [
            [dist.owner_rank((i, j)) for j in range(n)]
            for i in range(n)
        ]
        out.append(DistributionIllustration(
            variant=variant,
            label=VARIANT_LABELS[variant],
            grid_shape=compiled.mapping.grid.shape,
            owner_map=owner_map,
        ))
    return out


@dataclass
class LaplacePoint:
    variant: str
    size: int
    nprocs: int
    grid_shape: tuple[int, ...]
    estimated_s: float
    measured_s: float

    @property
    def abs_error_pct(self) -> float:
        if self.measured_s <= 0:
            return float("nan")
        return abs(self.estimated_s - self.measured_s) / self.measured_s * 100.0


@dataclass
class LaplaceStudy:
    """Figures 4 & 5 plus the §5.2.1 directive-selection conclusion."""

    nprocs: int
    points: list[LaplacePoint] = field(default_factory=list)

    def series(self, kind: str = "measured") -> dict[str, dict[float, float]]:
        """Series keyed by variant label → {problem size: time in seconds}."""
        out: dict[str, dict[float, float]] = {}
        for point in self.points:
            label = f"{'Estimated' if kind == 'estimated' else 'Measured'} " \
                    f"{VARIANT_LABELS[point.variant]}"
            out.setdefault(label, {})[float(point.size)] = (
                point.estimated_s if kind == "estimated" else point.measured_s
            )
        return out

    def best_variant(self, size: int, by: str = "estimated") -> str:
        """Which distribution the study selects for a given problem size."""
        candidates = [p for p in self.points if p.size == size]
        key = (lambda p: p.estimated_s) if by == "estimated" else (lambda p: p.measured_s)
        return min(candidates, key=key).variant

    def selection_agreement(self, tolerance_pct: float = 1.0) -> bool:
        """True when selecting directives from the *estimated* times is as good as
        selecting them from the measured times (the paper's §5.2.1 claim).

        For every problem size the variant the interpreter would pick must have a
        measured time within ``tolerance_pct`` percent of the best measured time;
        exact agreement is not required when candidates are tied within noise.
        """
        sizes = sorted({p.size for p in self.points})
        for size in sizes:
            candidates = {p.variant: p for p in self.points if p.size == size}
            estimated_pick = self.best_variant(size, "estimated")
            best_measured = min(p.measured_s for p in candidates.values())
            picked_measured = candidates[estimated_pick].measured_s
            if picked_measured > best_measured * (1.0 + tolerance_pct / 100.0):
                return False
        return True

    def max_error_pct(self) -> float:
        return max((p.abs_error_pct for p in self.points), default=0.0)

    def to_chart(self) -> str:
        series = {}
        series.update(self.series("estimated"))
        series.update(self.series("measured"))
        return render_series_chart(
            series,
            x_label="Problem Size",
            y_label="Execution Time (sec)",
            title=f"Laplace Solver ({self.nprocs} Procs) - Estimated/Measured Times",
        )

    def to_table(self) -> str:
        rows = []
        for point in sorted(self.points, key=lambda p: (p.size, p.variant)):
            rows.append([
                point.size,
                VARIANT_LABELS[point.variant],
                "x".join(str(d) for d in point.grid_shape),
                f"{point.estimated_s:.4f}",
                f"{point.measured_s:.4f}",
                f"{point.abs_error_pct:.2f}%",
            ])
        return render_table(
            ["size", "distribution", "grid", "estimated (s)", "measured (s)", "abs error"],
            rows,
            title=f"Laplace solver on {self.nprocs} processors",
        )


def laplace_study_campaign(
    nprocs: int = 4,
    sizes: Sequence[int] = (16, 64, 128, 192, 256),
    variants: Iterable[str] = LAPLACE_VARIANTS,
    maxiter: int | None = None,
) -> Campaign:
    """The §5.2.1 directive-selection question as a declarative campaign.

    The three DISTRIBUTE/ALIGN alternatives are the ``apps`` axis; a
    ``maxiter`` override rides along as a compile-time parameter set.
    """
    return Campaign(
        name=f"laplace-directives:p{nprocs}",
        space=ScenarioSpace(
            apps=tuple(f"laplace_{v}" for v in variants),
            sizes=tuple(sizes),
            proc_counts=(nprocs,),
            param_sets=((("maxiter", float(maxiter)),),) if maxiter is not None
            else ((),),
        ),
        mode="both",
    )


def run_laplace_study(
    nprocs: int = 4,
    sizes: Sequence[int] = (16, 64, 128, 192, 256),
    variants: Iterable[str] = LAPLACE_VARIANTS,
    maxiter: int | None = None,
    machine: str | Machine = "ipsc860",
    store: ResultStore | None = None,
) -> LaplaceStudy:
    """Reproduce Figure 4 (nprocs=4) or Figure 5 (nprocs=8).

    One ``mode="both"`` campaign over (directive variant × problem size); the
    paper's processor-grid shapes attach per variant during space expansion.
    """
    campaign = laplace_study_campaign(nprocs, sizes, variants, maxiter)
    machine_name, machine_resolver = resolve_campaign_machine(machine)
    campaign = replace(campaign,
                       space=replace(campaign.space, machines=(machine_name,)))
    run = campaign.run(store=store, machine_resolver=machine_resolver)

    study = LaplaceStudy(nprocs=nprocs)
    for result in run.results:
        study.points.append(LaplacePoint(
            variant=result.point.app.replace("laplace_", ""),
            size=result.point.size,
            nprocs=result.point.nprocs,
            grid_shape=tuple(result.grid_shape),
            estimated_s=result.estimated_us * 1e-6,
            measured_s=result.measured_us * 1e-6,
        ))
    return study


def run_directive_selection(
    sizes: Sequence[int] = (64, 128, 256),
    proc_counts: Iterable[int] = (4, 8),
    machine: str | Machine = "ipsc860",
    store: ResultStore | None = None,
) -> dict[int, LaplaceStudy]:
    """The full §5.2.1 experiment: one study per system size."""
    return {p: run_laplace_study(nprocs=p, sizes=sizes, machine=machine, store=store)
            for p in proc_counts}
