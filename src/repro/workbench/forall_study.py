"""Experiment E3 — Figure 2: abstraction of the forall statement.

The paper's Figure 2 shows how

    forall (K = 2:N-1, V(K) .GT. 0)  X(K+1) = X(K) + X(K-1)

is translated by Phase 1 into the three-level structure (collective
communication level, local computation level, final communication level) and
then abstracted by Phase 2 into ``Seq → Comm → IterD ( CondtD )``.  This module
compiles exactly that statement and reports both structures so the example,
test and benchmark can verify the shapes.

:func:`run_forall_scaling` extends the figure into a campaign preset: the
same kernel swept over (problem size × nprocs × machine) through the
design-space exploration subsystem, with the kernel shipped as an ad-hoc
:class:`~repro.explore.space.ProgramSpec` rather than a suite entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..appmodel import AAUType, build_saag
from ..compiler import CommPhase, LocalLoopNest, SeqOverhead, compile_source
from ..compiler.pipeline import CompiledProgram
from ..explore import Campaign, CampaignRun, ProgramSpec, ResultStore, ScenarioSpace

FORALL_EXAMPLE_SOURCE = """
      program figure2
      integer, parameter :: n = 64
      real, dimension(n + 1) :: x
      real, dimension(n) :: v
!HPF$ PROCESSORS p(4)
!HPF$ TEMPLATE t(n + 1)
!HPF$ ALIGN x(i) WITH t(i)
!HPF$ ALIGN v(i) WITH t(i)
!HPF$ DISTRIBUTE t(BLOCK) ONTO p
      forall (k = 1:n) v(k) = k - n / 2
      forall (k = 1:n + 1) x(k) = 0.01 * k
      forall (k = 2:n - 1, v(k) .gt. 0.0) x(k + 1) = x(k) + x(k - 1)
      print *, x(n)
      end program figure2
"""


@dataclass
class ForallAbstraction:
    """Phase-1 and Phase-2 shapes of the Figure 2 forall."""

    compiled: CompiledProgram
    phase1_levels: list[str] = field(default_factory=list)   # SPMD node kinds, in order
    aau_types: list[str] = field(default_factory=list)       # AAU type names, in order
    shift_offsets: list[int] = field(default_factory=list)
    has_mask_condition: bool = False
    needs_final_communication: bool = False

    def describe(self) -> str:
        lines = ["Figure 2: abstraction of the forall statement",
                 "  Phase 1 (SPMD structure): " + " -> ".join(self.phase1_levels),
                 "  Phase 2 (AAU structure):  " + " -> ".join(self.aau_types),
                 f"  stencil shift offsets: {sorted(self.shift_offsets)}",
                 f"  mask abstracted as CondtD: {self.has_mask_condition}",
                 f"  final communication level required: {self.needs_final_communication}"]
        return "\n".join(lines)


def run_forall_abstraction(nprocs: int = 4, n: int = 64) -> ForallAbstraction:
    """Compile and abstract the paper's Figure 2 forall statement."""
    compiled = compile_source(FORALL_EXAMPLE_SOURCE, name="figure2", nprocs=nprocs,
                              params={"n": float(n)})
    saag = build_saag(compiled)

    # locate the masked stencil forall (the third loop nest)
    target_nest = None
    for node in compiled.spmd.walk():
        if isinstance(node, LocalLoopNest) and node.mask is not None:
            target_nest = node
            break

    result = ForallAbstraction(compiled=compiled)

    # Phase-1 structure: the nodes surrounding the masked nest, in program order
    nodes = compiled.spmd.nodes
    if target_nest is not None:
        index = nodes.index(target_nest)
        window = nodes[max(index - 3, 0):index + 2]
        for node in window:
            if isinstance(node, SeqOverhead):
                result.phase1_levels.append(f"Seq({node.kind})")
            elif isinstance(node, CommPhase):
                result.phase1_levels.append(f"Comm({node.purpose})")
                for spec in node.comms:
                    if spec.kind == "shift":
                        result.shift_offsets.append(spec.offset)
                if node.purpose == "write-back":
                    result.needs_final_communication = True
            elif isinstance(node, LocalLoopNest):
                result.phase1_levels.append("IterD(local loop)"
                                             + ("+CondtD(mask)" if node.mask is not None else ""))

    # Phase-2 structure: AAU types covering the same source line
    line = target_nest.line if target_nest is not None else 0
    for aau in saag.walk():
        if aau.line == line and aau.type in (AAUType.SEQ, AAUType.COMM, AAUType.ITER,
                                             AAUType.COND):
            result.aau_types.append(aau.type_name)
            if aau.type is AAUType.COND:
                result.has_mask_condition = True
    return result


def forall_scaling_campaign(
    ns: Sequence[int] = (32, 64, 128),
    proc_counts: Sequence[int] = (2, 4, 8),
    machines: Sequence[str] = ("ipsc860", "paragon", "torus-cluster"),
) -> Campaign:
    """The Figure 2 kernel as a (size × nprocs × machine) campaign preset."""
    return Campaign(
        name="forall-scaling:figure2",
        space=ScenarioSpace(
            apps=("figure2",),
            sizes=tuple(ns),
            proc_counts=tuple(proc_counts),
            machines=tuple(machines),
            programs=(ProgramSpec(
                key="figure2",
                source=FORALL_EXAMPLE_SOURCE,
                description="masked stencil forall of the paper's Figure 2",
            ),),
        ),
        mode="predict",
    )


def run_forall_scaling(
    ns: Sequence[int] = (32, 64, 128),
    proc_counts: Sequence[int] = (2, 4, 8),
    machines: Sequence[str] = ("ipsc860", "paragon", "torus-cluster"),
    store: ResultStore | None = None,
) -> CampaignRun:
    """Predict how the Figure 2 forall scales across sizes, procs, machines.

    Ad-hoc programs are content-hashed by source text, so edits to the kernel
    never collide with stale store entries.
    """
    return forall_scaling_campaign(ns, proc_counts, machines).run(store=store)
