"""Performance profiles (the first output type of §4.2's output parse).

*"The first type is a generic performance profile of the entire application
broken up into its communication, computation and overhead components.
Similar measures for each individual AAU and for sub-graphs of the AAG are
also available."*
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..appmodel.aau import AAU
from ..interpreter.engine import InterpretationResult
from ..interpreter.metrics import Metrics


@dataclass
class ProfileEntry:
    """One row of a performance profile."""

    label: str
    metrics: Metrics
    line: int = 0
    aau_id: int | None = None

    @property
    def total(self) -> float:
        return self.metrics.total


@dataclass
class PerformanceProfile:
    """A named collection of profile rows plus the program-level summary."""

    program: str
    machine: str
    nprocs: int
    overall: Metrics
    entries: list[ProfileEntry] = field(default_factory=list)

    def sorted_entries(self) -> list[ProfileEntry]:
        return sorted(self.entries, key=lambda e: e.total, reverse=True)

    def top(self, n: int = 10) -> list[ProfileEntry]:
        return self.sorted_entries()[:n]

    def fraction(self, entry: ProfileEntry) -> float:
        return entry.total / self.overall.total if self.overall.total > 0 else 0.0

    def communication_fraction(self) -> float:
        if self.overall.total <= 0:
            return 0.0
        return self.overall.communication / self.overall.total


def program_profile(result: InterpretationResult) -> PerformanceProfile:
    """The whole-application profile: one entry per top-level AAU."""
    profile = PerformanceProfile(
        program=result.compiled.name,
        machine=result.machine.name,
        nprocs=result.compiled.nprocs,
        overall=result.total,
    )
    for aau in result.saag.root.children:
        profile.entries.append(ProfileEntry(
            label=aau.name,
            metrics=result.subtree_metrics(aau),
            line=aau.line,
            aau_id=aau.id,
        ))
    return profile


def aau_profile(result: InterpretationResult, aau: AAU) -> PerformanceProfile:
    """Profile of a single AAU's sub-graph (a branch of the AAG)."""
    profile = PerformanceProfile(
        program=result.compiled.name,
        machine=result.machine.name,
        nprocs=result.compiled.nprocs,
        overall=result.subtree_metrics(aau),
    )
    for child in aau.children:
        profile.entries.append(ProfileEntry(
            label=child.name,
            metrics=result.subtree_metrics(child),
            line=child.line,
            aau_id=child.id,
        ))
    if not aau.children:
        profile.entries.append(ProfileEntry(
            label=aau.name, metrics=result.metrics_for(aau.id), line=aau.line, aau_id=aau.id,
        ))
    return profile


def line_profile(result: InterpretationResult) -> PerformanceProfile:
    """Profile keyed by source line (one row per line with non-zero cost)."""
    profile = PerformanceProfile(
        program=result.compiled.name,
        machine=result.machine.name,
        nprocs=result.compiled.nprocs,
        overall=result.total,
    )
    for line, metrics in sorted(result.line_breakdown().items()):
        text = result.compiled.source.line_text(line).strip() or f"line {line}"
        profile.entries.append(ProfileEntry(label=text, metrics=metrics, line=line))
    return profile


def phase_profile(
    result: InterpretationResult,
    phases: dict[str, tuple[int, int]],
) -> PerformanceProfile:
    """Profile over user-defined application phases (line ranges).

    ``phases`` maps a phase label to an inclusive (first_line, last_line)
    range; this is how the Figure 6/7 stock-option-pricing breakdown is
    produced (Phase 1 builds the price lattice, Phase 2 computes call prices).
    """
    profile = PerformanceProfile(
        program=result.compiled.name,
        machine=result.machine.name,
        nprocs=result.compiled.nprocs,
        overall=result.total,
    )
    line_metrics = result.line_breakdown()
    for label, (first, last) in phases.items():
        metrics = Metrics()
        for line, value in line_metrics.items():
            if first <= line <= last:
                metrics += value
        profile.entries.append(ProfileEntry(label=label, metrics=metrics, line=first))
    return profile
