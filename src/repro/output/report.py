"""Text rendering of profiles, comparisons and paper-style tables/charts.

The framework's GUI presented menus and graphs; this module provides the
equivalent plain-text renderings used by the examples, the experiment
harness (Tables / Figures) and the test suite.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..interpreter.metrics import Metrics
from .profile import PerformanceProfile


def format_us(value_us: float) -> str:
    """Human-friendly time formatting."""
    if value_us >= 1e6:
        return f"{value_us / 1e6:.3f} s"
    if value_us >= 1e3:
        return f"{value_us / 1e3:.3f} ms"
    return f"{value_us:.1f} us"


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned monospaced table."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_profile(profile: PerformanceProfile, top: int | None = None,
                   title: str | None = None) -> str:
    """Render a performance profile as a table with comp/comm/overhead columns."""
    entries = profile.sorted_entries()
    if top is not None:
        entries = entries[:top]
    rows = []
    for entry in entries:
        rows.append([
            f"{entry.line}" if entry.line else "-",
            entry.label[:48],
            format_us(entry.metrics.computation),
            format_us(entry.metrics.communication),
            format_us(entry.metrics.overhead),
            format_us(entry.total),
            f"{profile.fraction(entry) * 100:.1f}%",
        ])
    table = render_table(
        ["line", "construct", "comp", "comm", "ovhd", "total", "share"],
        rows,
        title=title or f"Performance profile: {profile.program} "
                       f"({profile.nprocs} procs, {profile.machine})",
    )
    summary = (f"\noverall: comp {format_us(profile.overall.computation)}, "
               f"comm {format_us(profile.overall.communication)}, "
               f"ovhd {format_us(profile.overall.overhead)}, "
               f"total {format_us(profile.overall.total)}")
    return table + summary


def render_bar_chart(
    data: dict[str, float],
    width: int = 48,
    unit: str = "us",
    title: str | None = None,
) -> str:
    """Horizontal ASCII bar chart (used for the Figure 7 / Figure 8 style plots)."""
    if not data:
        return "(no data)"
    peak = max(data.values()) or 1.0
    lines = [title] if title else []
    label_width = max(len(k) for k in data)
    for key, value in data.items():
        bar = "#" * max(int(round(value / peak * width)), 0)
        lines.append(f"{key.ljust(label_width)} | {bar} {value:.1f} {unit}")
    return "\n".join(lines)


def render_series_chart(
    series: dict[str, dict[float, float]],
    x_label: str = "problem size",
    y_label: str = "time (s)",
    title: str | None = None,
) -> str:
    """Render several (x → y) series as an aligned table (Figure 4/5 style)."""
    xs = sorted({x for points in series.values() for x in points})
    headers = [x_label] + list(series.keys())
    rows = []
    for x in xs:
        row = [f"{x:g}"]
        for name in series:
            value = series[name].get(x)
            row.append(f"{value:.6f}" if value is not None else "-")
        rows.append(row)
    heading = title or f"{y_label} vs {x_label}"
    return render_table(headers, rows, title=heading)


def render_comparison(
    estimated: Metrics,
    measured_total_us: float,
    label: str = "",
) -> str:
    """One-line estimated-vs-measured comparison with the absolute error %."""
    error = abs(estimated.total - measured_total_us) / measured_total_us * 100 \
        if measured_total_us > 0 else float("nan")
    prefix = f"{label}: " if label else ""
    return (f"{prefix}estimated {format_us(estimated.total)} vs "
            f"measured {format_us(measured_total_us)}  (abs error {error:.2f}%)")
