"""Output Module: profiles, per-line queries, ParaGraph-style traces, reports."""

from .profile import (
    PerformanceProfile,
    ProfileEntry,
    aau_profile,
    line_profile,
    phase_profile,
    program_profile,
)
from .query import LineQueryResult, QueryInterface
from .report import (
    format_us,
    render_bar_chart,
    render_comparison,
    render_profile,
    render_series_chart,
    render_table,
)
from .trace import InterpretationTrace, TraceEvent, generate_trace, merge_traces

__all__ = [
    "PerformanceProfile",
    "ProfileEntry",
    "aau_profile",
    "line_profile",
    "phase_profile",
    "program_profile",
    "LineQueryResult",
    "QueryInterface",
    "format_us",
    "render_bar_chart",
    "render_comparison",
    "render_profile",
    "render_series_chart",
    "render_table",
    "InterpretationTrace",
    "TraceEvent",
    "generate_trace",
    "merge_traces",
]
