"""Interpretation trace generation (ParaGraph-style).

The third output form of §4.2: *"the system can generate an interpretation
trace which can be used as input to the ParaGraph visualization package."*
ParaGraph consumes PICL-style event records; we emit a portable subset — one
record per (processor, event, time) with begin/end markers for computation
blocks and send/receive pairs for communication — plus a plain-text timeline
renderer for environments without the visualiser.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..appmodel.aau import AAUType
from ..interpreter.engine import InterpretationResult

# PICL-like event type codes used by ParaGraph
EVENT_COMPUTE_BEGIN = -3
EVENT_COMPUTE_END = -4
EVENT_SEND = -21
EVENT_RECV = -22
EVENT_OVERHEAD = -13


@dataclass
class TraceEvent:
    """One trace record: (event type, timestamp µs, processor, length bytes)."""

    event: int
    time_us: float
    processor: int
    length: int = 0
    tag: str = ""

    def to_record(self) -> str:
        """PICL-style whitespace-separated record (time in seconds)."""
        return f"{self.event} {self.time_us * 1e-6:.9f} {self.processor} {self.length}"


@dataclass
class InterpretationTrace:
    """A full trace for all processors."""

    program: str
    nprocs: int
    events: list[TraceEvent] = field(default_factory=list)

    def add(self, event: TraceEvent) -> None:
        self.events.append(event)

    def sorted_events(self) -> list[TraceEvent]:
        return sorted(self.events, key=lambda e: (e.time_us, e.processor, e.event))

    def to_text(self) -> str:
        """The trace file contents (header + one record per line)."""
        lines = [f"# interpretation trace for {self.program} on {self.nprocs} processors"]
        lines.extend(event.to_record() for event in self.sorted_events())
        return "\n".join(lines) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_text())

    def timeline(self, width: int = 64) -> str:
        """A crude per-processor utilisation timeline (text renderer)."""
        if not self.events:
            return "(empty trace)"
        horizon = max(e.time_us for e in self.events) or 1.0
        rows = []
        for proc in range(self.nprocs):
            cells = [" "] * width
            for event in self.events:
                if event.processor != proc:
                    continue
                slot = min(int(event.time_us / horizon * (width - 1)), width - 1)
                if event.event in (EVENT_SEND, EVENT_RECV):
                    cells[slot] = "c"
                elif event.event == EVENT_OVERHEAD:
                    cells[slot] = "."
                else:
                    cells[slot] = "#"
            rows.append(f"P{proc:<3d} |{''.join(cells)}|")
        legend = "      # compute   c communicate   . overhead"
        return "\n".join(rows) + "\n" + legend


def generate_trace(result: InterpretationResult) -> InterpretationTrace:
    """Build a ParaGraph-style trace from an interpretation result.

    The interpretation is static, so every processor follows the same
    loosely-synchronous schedule; the trace lays the AAUs out along the
    interpreted global clock and replicates compute/communication events on
    every processor (which is exactly what the visualiser needs to show the
    alternating computation / communication structure).
    """
    nprocs = result.compiled.nprocs
    trace = InterpretationTrace(program=result.compiled.name, nprocs=nprocs)

    clock = 0.0
    for aau in result.saag.walk():
        entry = result.table.get(aau.id)
        if entry is None:
            continue
        total = entry.total
        if total.total <= 0:
            continue
        duration = total.total
        begin, end = clock, clock + duration
        if aau.type in (AAUType.COMM, AAUType.SYNC):
            nbytes = 0
            for comm_entry in result.saag.comm_table.for_aau(aau.id):
                nbytes += int(comm_entry.bytes_per_proc)
            for proc in range(nprocs):
                trace.add(TraceEvent(EVENT_SEND, begin, proc, nbytes, aau.name))
                trace.add(TraceEvent(EVENT_RECV, end, proc, nbytes, aau.name))
        elif aau.type in (AAUType.ITER, AAUType.REDUCE, AAUType.SEQ, AAUType.COND):
            event_type = EVENT_OVERHEAD if total.overhead >= total.computation \
                else EVENT_COMPUTE_BEGIN
            for proc in range(nprocs):
                trace.add(TraceEvent(event_type, begin, proc, 0, aau.name))
                if event_type == EVENT_COMPUTE_BEGIN:
                    trace.add(TraceEvent(EVENT_COMPUTE_END, end, proc, 0, aau.name))
        clock = end
    return trace


def merge_traces(traces: Iterable[InterpretationTrace], program: str = "merged") -> InterpretationTrace:
    """Concatenate several traces end-to-end (used when composing experiments)."""
    merged = InterpretationTrace(program=program, nprocs=max(t.nprocs for t in traces))
    offset = 0.0
    for trace in traces:
        horizon = max((e.time_us for e in trace.events), default=0.0)
        for event in trace.events:
            merged.add(TraceEvent(event.event, event.time_us + offset, event.processor,
                                  event.length, event.tag))
        offset += horizon
    return merged
