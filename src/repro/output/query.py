"""Interactive-style queries against an interpretation result.

The second output form of §4.2: *"the user [can] query the system for the
metrics associated with a particular line (or a set of lines) of the
application description"*.  The same queries work against a simulation result
so estimated and measured attributions can be compared side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..appmodel.aau import AAU, AAUType
from ..interpreter.engine import InterpretationResult
from ..interpreter.metrics import Metrics
from ..simulator.runtime import SimulationResult


@dataclass
class LineQueryResult:
    """Metrics attributed to one source line (plus the AAUs behind them)."""

    line: int
    source_text: str
    metrics: Metrics
    aaus: list[AAU]

    def describe(self) -> str:
        names = ", ".join(f"{a.type_name}#{a.id}" for a in self.aaus) or "none"
        return (f"line {self.line}: {self.source_text.strip() or '<empty>'}\n"
                f"  {self.metrics.describe('ms')}\n  AAUs: {names}")


class QueryInterface:
    """Wraps an interpretation result with the paper's query operations."""

    def __init__(self, result: InterpretationResult,
                 simulation: SimulationResult | None = None):
        self.result = result
        self.simulation = simulation

    # -- per line -----------------------------------------------------------------

    def line(self, line: int) -> LineQueryResult:
        return LineQueryResult(
            line=line,
            source_text=self.result.compiled.source.line_text(line),
            metrics=self.result.per_line(line),
            aaus=self.result.saag.at_line(line),
        )

    def lines(self, first: int, last: int) -> list[LineQueryResult]:
        return [self.line(n) for n in range(first, last + 1)
                if self.result.per_line(n).total > 0]

    def hottest_lines(self, n: int = 5) -> list[LineQueryResult]:
        breakdown = self.result.line_breakdown()
        ranked = sorted(breakdown.items(), key=lambda kv: kv[1].total, reverse=True)
        return [self.line(line) for line, _ in ranked[:n]]

    # -- per AAU / sub-graph --------------------------------------------------------

    def aau(self, aau_id: int) -> tuple[AAU | None, Metrics]:
        node = self.result.saag.find(aau_id)
        return node, self.result.metrics_for(aau_id)

    def subgraph(self, aau_id: int) -> Metrics:
        node = self.result.saag.find(aau_id)
        if node is None:
            return Metrics()
        return self.result.subtree_metrics(node)

    def communication_operations(self) -> list[str]:
        return [entry.describe() for entry in self.result.saag.comm_table]

    def critical_variables(self) -> str:
        return self.result.saag.critical_variables.describe()

    # -- estimated vs measured comparison ----------------------------------------------

    def compare_line(self, line: int) -> dict[str, float]:
        """Estimated vs simulated totals for one line (µs)."""
        estimated = self.result.per_line(line).total
        measured = self.simulation.per_line(line).total if self.simulation else float("nan")
        return {"line": float(line), "estimated_us": estimated, "measured_us": measured}

    def bottleneck_type(self) -> str:
        """Which component dominates: computation, communication, or overhead."""
        totals = self.result.total
        best = max(
            ("computation", totals.computation),
            ("communication", totals.communication),
            ("overhead", totals.overhead),
            key=lambda kv: kv[1],
        )
        return best[0]

    def comm_heavy_aaus(self, threshold: float = 0.5) -> list[AAU]:
        """AAUs whose communication share exceeds *threshold* of their total."""
        out = []
        for aau in self.result.saag.walk():
            if aau.type not in (AAUType.COMM, AAUType.SYNC):
                continue
            metrics = self.result.metrics_for(aau.id)
            if metrics.total > 0 and metrics.communication / metrics.total >= threshold:
                out.append(aau)
        return out
