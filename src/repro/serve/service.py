"""The prediction service: three-tier request resolution over the library.

The transport-free heart of ``repro.serve`` (the HTTP server in
:mod:`repro.serve.server` is a thin codec around it; tests drive it
directly).  Every request resolves through the same path:

1. **memory** — the :class:`~repro.serve.cache.ResponseCache` LRU over
   serialised payloads (plus a raw-body fast path for byte-identical
   requests),
2. **store** — the content-addressed :class:`~repro.explore.store.ResultStore`
   (predict requests *are* scenario points, so the persistent store is a
   cache tier for free),
3. **compute** — single-flight deduplicated (:mod:`.singleflight`), batched
   (:mod:`.batching`) and dispatched to a worker-thread pool running the
   same :func:`~repro.explore.campaign.evaluate_point` worker campaigns
   use; computed results are appended to the store and promoted to the
   memory tier.

Each dispatched cache-miss batch stamps a ``repro.obs`` manifest next to
the store (``<store>.serve-manifest.json``) so a live server leaves the
same flight-recorder trail campaigns do.

The service is also where the resilience knobs land (see
``docs/resilience.md``): every request gets a monotonic **deadline**
derived from ``ServeOptions.request_deadline_ms`` (504 when it expires —
the underlying computation is shielded and still completes, warming the
cache for the retry), the batch queue **sheds** above
``ServeOptions.queue_max`` (503 with ``Retry-After``), transient compute
failures are retried through :func:`repro.faults.retry_call`, and
:meth:`~PredictionService.health_payload` reports ``degraded`` while the
server is under recent pressure.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, List, Mapping, Optional, Tuple

import shutil
import tempfile

from .. import faults, obs
from ..advisor.search import advise
from ..explore.campaign import evaluate_point, run_campaign
from ..explore.sharding import run_sharded_campaign
from ..explore.space import ScenarioSpace
from ..explore.store import ResultStore, ScenarioResult
from .batching import BatchQueue
from .cache import ResponseCache
from .errors import DeadlineExceededError, ProtocolError, ServeError
from .protocol import (
    AdviseRequest,
    CampaignRequest,
    PredictRequest,
    ServeOptions,
)
from .singleflight import SingleFlight


def serve_manifest_path(store_path: str) -> str:
    """Where serve-batch manifests live — deliberately distinct from the
    campaign manifest path, so a served campaign cannot clobber the batch
    trail (nor vice versa)."""
    root, _ext = os.path.splitext(store_path)
    return root + ".serve-manifest.json"


def _parse_json(body: bytes, endpoint: str) -> Mapping:
    try:
        payload = json.loads(body or b"{}")
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"{endpoint}: request body is not valid JSON "
                            f"({exc})") from None
    if not isinstance(payload, dict):
        raise ProtocolError(f"{endpoint}: request body must be a JSON "
                            f"object, got {type(payload).__name__}")
    return payload


def _encode(payload: Mapping) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def _with_tier(payload_bytes: bytes, tier: str) -> bytes:
    # payloads are non-empty JSON objects, so grafting the tier field onto
    # the cached bytes avoids re-serialising the whole payload per hit
    return b'{"served_from":"' + tier.encode("ascii") + b'",' \
        + payload_bytes[1:]


class PredictionService:
    """Three-tier cached predict/advise/campaign over the repro library."""

    def __init__(self, options: Optional[ServeOptions] = None):
        self.options = options or ServeOptions()
        self.store: Optional[ResultStore] = (
            ResultStore(self.options.store_path)
            if self.options.store_path else None)
        self.cache = ResponseCache(self.options.cache_size)
        self.flight = SingleFlight()
        workers = self.options.workers or min(8, (os.cpu_count() or 2))
        self.executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve")
        self.batches = BatchQueue(
            worker=self._compute_predict,
            executor=self.executor,
            batch_max=self.options.batch_max,
            batch_window_s=self.options.batch_window_ms / 1000.0,
            queue_max=self.options.queue_max,
            on_batch=self._stamp_batch_manifest,
            on_shed=self._note_pressure,
        )
        self.started_monotonic: Optional[float] = None
        self.last_manifest = None
        self._batch_seq = 0
        self.deadline_exceeded_total = 0
        self._last_pressure: Optional[float] = None  # monotonic stamp

    #: how long after the last shed/timeout ``/healthz`` reports degraded
    PRESSURE_WINDOW_S = 30.0

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        if self.options.telemetry:
            obs.enable()
        self.batches.start()
        self.started_monotonic = time.monotonic()

    async def stop(self) -> None:
        """Graceful stop: drain accepted work, then shut the pool down.

        New submissions are shed with 503 from the moment this is
        called; work already in the batch queue gets
        ``ServeOptions.drain_timeout_s`` seconds to finish.
        """
        await self.batches.stop(
            drain=True, drain_timeout_s=self.options.drain_timeout_s)
        self.executor.shutdown(wait=True, cancel_futures=True)

    # -- deadlines ----------------------------------------------------------

    def request_deadline(self) -> Optional[float]:
        """Absolute ``time.monotonic()`` budget for one request, or None."""
        ms = self.options.request_deadline_ms
        return None if ms <= 0 else time.monotonic() + ms / 1000.0

    def _note_pressure(self, _reason: str = "") -> None:
        self._last_pressure = time.monotonic()

    async def _resolve(self, key: str, compute,
                       deadline: Optional[float]) -> Tuple[bytes, str]:
        """Await the single-flight computation under *deadline*.

        The underlying flight is shielded: a 504 abandons the *wait*,
        not the *work* — the computation completes, lands in the cache,
        and the client's retry hits it.  (Joiners share the first
        caller's flight; each still times out on its own deadline.)
        """
        task = asyncio.ensure_future(self.flight.run(key, compute))
        if deadline is None:
            return await task
        try:
            return await asyncio.wait_for(
                asyncio.shield(task), max(deadline - time.monotonic(), 0.0))
        except asyncio.TimeoutError:
            self.deadline_exceeded_total += 1
            obs.counter("repro_serve_deadline_exceeded_total").inc()
            self._note_pressure("deadline")
            # the shielded flight keeps running; keep its eventual failure
            # (if any) from surfacing as an "exception never retrieved"
            task.add_done_callback(
                lambda t: t.cancelled() or t.exception())
            raise DeadlineExceededError(
                f"request exceeded its "
                f"{self.options.request_deadline_ms:g} ms deadline") from None

    # -- /predict -----------------------------------------------------------

    async def handle_predict(self, body: bytes,
                             deadline: Optional[float] = None
                             ) -> Tuple[bytes, str]:
        """Resolve one predict request; returns (payload bytes, tier)."""
        request: Optional[PredictRequest] = None
        key = self.cache.key_for_body(body)
        if key is None:
            request = PredictRequest.from_payload(
                _parse_json(body, "/predict"))
            key = request.key
            self.cache.remember_body(body, key)
        cached = self.cache.get(key)
        if cached is not None:
            return cached, "memory"
        if request is None:
            # the raw-body memo outlived the payload entry; re-canonicalise
            request = PredictRequest.from_payload(
                _parse_json(body, "/predict"))

        req = request

        async def compute() -> Tuple[bytes, str]:
            if self.store is not None:
                hit = self.store.get_point(
                    req.point, "predict",
                    req.program.source if req.program is not None else None)
                if hit is not None:
                    obs.counter("repro_serve_cache_hits_total",
                                tier="store").inc()
                    data = _encode(self._predict_payload(hit))
                    self.cache.put(key, data)
                    return data, "store"
                obs.counter("repro_serve_cache_misses_total",
                            tier="store").inc()
            data = _encode(await self.batches.submit(req, deadline))
            self.cache.put(key, data)
            return data, "computed"

        return await self._resolve(key, compute, deadline)

    def _compute_predict(self, req: PredictRequest) -> Mapping:
        """Worker-thread body: one fresh prediction through the campaign
        worker (two-stage compile/price caches apply underneath).

        The ``serve.compute`` injection site fires here, and transient
        failures (injected or real ``OSError``) are retried up to
        ``ServeOptions.compute_retries`` times before the request fails.
        """
        obs.counter("repro_serve_computes_total", kind="predict").inc()

        def _evaluate() -> ScenarioResult:
            faults.fire("serve.compute", app=req.point.app)
            return evaluate_point(req.point, mode="predict",
                                  program=req.program)

        result = faults.retry_call(_evaluate, site="serve.compute",
                                   retries=self.options.compute_retries)
        if self.store is not None:
            self.store.add(result)
        return self._predict_payload(result)

    @staticmethod
    def _predict_payload(result: ScenarioResult) -> Mapping:
        return {
            "key": result.key,
            "scenario": result.point.scenario_dict(),
            "predicted_time_us": result.estimated_us,
            "comp_us": result.comp_us,
            "comm_us": result.comm_us,
            "ovhd_us": result.ovhd_us,
            "grid_shape": list(result.grid_shape),
        }

    # -- /advise ------------------------------------------------------------

    async def handle_advise(self, body: bytes,
                            deadline: Optional[float] = None
                            ) -> Tuple[bytes, str]:
        request = AdviseRequest.from_payload(
            _parse_json(body, "/advise"), self.options)
        cached = self.cache.get(request.key)
        if cached is not None:
            return cached, "memory"

        async def compute() -> Tuple[bytes, str]:
            data = _encode(await asyncio.get_running_loop().run_in_executor(
                self.executor, self._compute_advise, request))
            self.cache.put(request.key, data)
            return data, "computed"

        return await self._resolve(request.key, compute, deadline)

    def _compute_advise(self, req: AdviseRequest) -> Mapping:
        obs.counter("repro_serve_computes_total", kind="advise").inc()
        report = advise(
            req.target, size=req.size, nprocs=req.nprocs,
            machine=req.machine, store=self.store, budget=req.budget,
            simulate_top=req.simulate_top, max_nprocs=req.max_nprocs,
            seed=req.seed)
        return {
            "target": report.target,
            "baseline_us": report.baseline.objective_us,
            "findings": [
                {"kind": f.kind, "severity": round(f.severity, 4),
                 "message": f.message, "phase": f.phase, "line": f.line}
                for f in report.findings],
            "recommendations": [
                {"description": r.mutation.description,
                 "predicted_speedup": round(r.predicted_speedup, 3),
                 "confidence": r.confidence,
                 "explanation": r.explanation()}
                for r in report.recommendations],
            "candidates_evaluated": report.candidates_evaluated,
            "store_hits": report.store_hits,
        }

    # -- /campaign ----------------------------------------------------------

    async def handle_campaign(self, body: bytes,
                              deadline: Optional[float] = None
                              ) -> Tuple[bytes, str]:
        request = CampaignRequest.from_payload(
            _parse_json(body, "/campaign"), self.options)
        cached = self.cache.get(request.key)
        if cached is not None:
            return cached, "memory"

        space = ScenarioSpace(apps=request.apps, sizes=request.sizes,
                              proc_counts=request.proc_counts,
                              machines=request.machines)
        points, _rejects = space.expand_with_rejects()
        if len(points) > self.options.campaign_point_cap:
            raise ProtocolError(
                f"/campaign: space expands to {len(points)} points, over "
                f"this server's cap of {self.options.campaign_point_cap}; "
                f"shrink the axes or raise "
                f"ServeOptions.campaign_point_cap")

        async def compute() -> Tuple[bytes, str]:
            data = _encode(await asyncio.get_running_loop().run_in_executor(
                self.executor, self._compute_campaign, request, space))
            self.cache.put(request.key, data)
            return data, "computed"

        return await self._resolve(request.key, compute, deadline)

    def _compute_campaign(self, req: CampaignRequest,
                          space: ScenarioSpace) -> Mapping:
        obs.counter("repro_serve_computes_total", kind="campaign").inc()
        if req.shards > 1:
            run = self._run_sharded(req, space)
        else:
            # worker threads must not fork a process pool mid-request; the
            # thread executor is the safe choice inside a live server
            run = run_campaign(space, name=req.name, mode=req.mode,
                               strategy=req.strategy, store=self.store,
                               samples=req.samples, max_steps=req.max_steps,
                               seed=req.seed, executor="thread")
        best = run.best() if run.results else None
        return {
            "name": run.name,
            "strategy": run.strategy,
            "mode": run.mode,
            "points": len(run.results),
            "fresh_evaluations": run.evaluated,
            "store_hits": run.store_hits,
            "rejected": len(run.rejected),
            "shards": req.shards,
            "best": {
                "scenario": best.point.scenario_dict(),
                "objective_us": best.objective_us,
            } if best is not None else None,
        }

    def _run_sharded(self, req: CampaignRequest, space: ScenarioSpace):
        """``shards > 1``: fan the campaign out over worker processes.

        Segments and checkpoints live in a per-request temporary directory —
        two concurrent sharded campaigns over one serve store must never
        collide on ``<store>.shard-K.jsonl`` — and merge into the server's
        canonical store through the normal drift-checked path.  The fan-out
        is request-scoped (no resume), so the segment directory is removed
        whatever happens.
        """
        segment_dir = tempfile.mkdtemp(prefix="repro-serve-shards-")
        try:
            return run_sharded_campaign(
                space, name=req.name, mode=req.mode, strategy=req.strategy,
                samples=req.samples, seed=req.seed, shards=req.shards,
                store=self.store, segment_dir=segment_dir,
                keep_segments=False)
        finally:
            shutil.rmtree(segment_dir, ignore_errors=True)

    # -- GET endpoints ------------------------------------------------------

    def metrics_text(self) -> str:
        """Prometheus exposition of the process-wide metric registry."""
        return obs.prometheus_text(obs.get_registry())

    def health_payload(self) -> Mapping:
        """``/healthz`` body — ``status`` is ``ok`` or ``degraded``.

        Degraded means the server is still answering but under pressure:
        the batch queue is currently full, or work was shed / a deadline
        expired within the last :data:`PRESSURE_WINDOW_S` seconds.
        """
        from .. import __version__
        uptime = 0.0 if self.started_monotonic is None \
            else time.monotonic() - self.started_monotonic
        queue_depth = self.batches.queue_depth
        degraded = queue_depth >= self.options.queue_max or (
            self._last_pressure is not None
            and time.monotonic() - self._last_pressure
            < self.PRESSURE_WINDOW_S)
        return {
            "status": "degraded" if degraded else "ok",
            "version": __version__,
            "uptime_s": round(uptime, 3),
            "cache_entries": len(self.cache),
            "store_records": len(self.store) if self.store is not None
            else None,
            "in_flight": self.flight.in_flight(),
            "batches_dispatched": self.batches.batches_dispatched,
            "resilience": {
                "queue_depth": queue_depth,
                "queue_max": self.options.queue_max,
                "shed_total": self.batches.shed_total,
                "deadline_expired_total": self.batches.expired_total
                + self.deadline_exceeded_total,
                "retry_total": faults.retry_total(),
                "faults_active": faults.enabled(),
            },
        }

    # -- batch manifests ----------------------------------------------------

    def _stamp_batch_manifest(self, items: List[Any], results: List[Any],
                              wall_s: float) -> None:
        """Per-request-batch flight record, written next to the store."""
        self._batch_seq += 1
        if not obs.enabled() or self.store is None:
            return
        computed = sum(1 for r in results
                       if not isinstance(r, BaseException))
        manifest = obs.build_manifest(
            name=f"serve-batch-{self._batch_seq}",
            mode="serve",
            strategy="batch",
            executor="serve-pool",
            wall_time_s=wall_s,
            points_evaluated=len(items),
            fresh_evaluations=computed,
            store_hits=0,
            store_path=self.store.path,
            store_records=len(self.store),
            registry=obs.get_registry(),
        )
        manifest.write(serve_manifest_path(self.store.path))
        self.last_manifest = manifest


__all__ = [
    "PredictionService",
    "serve_manifest_path",
    "ServeError",
    "ProtocolError",
    "ServeOptions",
]
