"""Single-flight deduplication: one compute per key, however many callers.

A thundering herd on one scenario — N clients asking for the same
uncached prediction at once — must cost one compile + one price, not N.
The first caller for a key becomes the **leader** and runs the supplier;
every concurrent caller for the same key becomes a **follower** and
awaits the leader's future.  Once the leader finishes, the key leaves the
in-flight table, so a later request computes afresh (the response cache,
not the flight group, is the steady-state memo).

Leaders and followers are counted through ``repro.obs``
(``repro_serve_singleflight_leaders_total`` / ``..._followers_total``) —
the test asserting "N≥32 concurrent identical requests, exactly one
compute" reads those counters.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict

from .. import obs


class SingleFlight:
    """Keyed in-flight futures; asyncio, single event loop."""

    def __init__(self) -> None:
        self._inflight: Dict[str, asyncio.Future] = {}

    def in_flight(self) -> int:
        return len(self._inflight)

    async def run(self, key: str,
                  supplier: Callable[[], Awaitable[Any]]) -> Any:
        """Return ``await supplier()``, deduplicated per *key*.

        The leader's failure is propagated to every follower; a cancelled
        follower never cancels the shared computation (``shield``).
        """
        existing = self._inflight.get(key)
        if existing is not None:
            obs.counter("repro_serve_singleflight_followers_total").inc()
            return await asyncio.shield(existing)

        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        obs.counter("repro_serve_singleflight_leaders_total").inc()
        try:
            result = await supplier()
        except BaseException as exc:
            if not future.cancelled():
                future.set_exception(exc)
                # mark retrieved so a follower-less failure does not log
                # an "exception was never retrieved" warning at GC time
                future.exception()
            raise
        else:
            if not future.cancelled():
                future.set_result(result)
            return result
        finally:
            self._inflight.pop(key, None)


__all__ = ["SingleFlight"]
