"""A stdlib-only asyncio HTTP/1.1 front end over the prediction service.

No third-party dependencies: requests are parsed straight off asyncio
streams (one ``readuntil`` for the header block, one ``readexactly`` for
the body), keep-alive and pipelining fall out of the per-connection read
loop, and responses are written with precomputed status lines.  The codec
is deliberately minimal — JSON-over-POST plus two GET endpoints — because
the interesting machinery (caching, single-flight, batching) lives in
:class:`~repro.serve.service.PredictionService`.

Endpoints::

    POST /predict    one scenario -> interpreted estimate (cached 3-tier)
    POST /advise     bounded advisor run -> ranked recommendations
    POST /campaign   declarative sweep -> best configuration
    GET  /metrics    Prometheus text exposition (repro.obs registry)
    GET  /healthz    liveness + cache/store/in-flight gauges

Run one with :class:`ServerThread` (tests, notebooks), :func:`run`
(blocking), or ``python -m repro.serve``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from math import ceil
from typing import Optional, Tuple

from .. import obs
from .errors import (
    MethodNotAllowedError,
    PayloadTooLargeError,
    ProtocolError,
    ServeError,
    UnknownRouteError,
)
from .protocol import ServeOptions
from .service import PredictionService, _encode, _with_tier

_STATUS_LINES = {
    200: b"HTTP/1.1 200 OK\r\n",
    400: b"HTTP/1.1 400 Bad Request\r\n",
    404: b"HTTP/1.1 404 Not Found\r\n",
    405: b"HTTP/1.1 405 Method Not Allowed\r\n",
    413: b"HTTP/1.1 413 Payload Too Large\r\n",
    500: b"HTTP/1.1 500 Internal Server Error\r\n",
    503: b"HTTP/1.1 503 Service Unavailable\r\n",
    504: b"HTTP/1.1 504 Gateway Timeout\r\n",
}

_JSON = b"application/json"
_TEXT = b"text/plain; charset=utf-8"

#: Ceiling on one request's header block (readuntil buffer limit).
MAX_HEADER_BYTES = 65536


def _response(status: int, body: bytes,
              content_type: bytes = _JSON, close: bool = False,
              retry_after: Optional[float] = None) -> bytes:
    retry_header = b"" if retry_after is None else \
        b"Retry-After: " + str(max(1, ceil(retry_after))).encode("ascii") \
        + b"\r\n"
    return b"".join((
        _STATUS_LINES.get(status, _STATUS_LINES[500]),
        b"Content-Type: ", content_type, b"\r\n",
        b"Content-Length: ", str(len(body)).encode("ascii"), b"\r\n",
        retry_header,
        b"Connection: close\r\n" if close else b"Connection: keep-alive\r\n",
        b"\r\n",
        body,
    ))


class ReproServer:
    """The asyncio server: socket lifecycle + HTTP codec + routing."""

    def __init__(self, options: Optional[ServeOptions] = None,
                 service: Optional[PredictionService] = None):
        self.options = options or ServeOptions()
        self.service = service or PredictionService(self.options)
        self._server: Optional[asyncio.base_events.Server] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind, start the service machinery, and return (host, port)."""
        await self.service.start()
        try:
            self._server = await asyncio.start_server(
                self._serve_connection, self.options.host, self.options.port,
                limit=MAX_HEADER_BYTES)
        except BaseException:
            # unwind: a failed bind must not leak the service's collector
            # task into a loop that is about to close
            await self.service.stop()
            raise
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    # -- one connection -----------------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    header_blob = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                except asyncio.LimitOverrunError:
                    writer.write(_response(
                        400, _encode({"error": "header block too large",
                                      "status": 400}), close=True))
                    await writer.drain()
                    break
                keep_alive, payload = await self._serve_request(
                    header_blob, reader)
                writer.write(payload)
                await writer.drain()
                if not keep_alive:
                    break
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_request(self, header_blob: bytes,
                             reader: asyncio.StreamReader
                             ) -> Tuple[bool, bytes]:
        """Parse one request off the stream and produce the response bytes."""
        started = time.perf_counter()
        route = "<bad>"
        status = 500
        try:
            method, target, headers = _parse_header_block(header_blob)
            route = target.split("?", 1)[0] or "/"
            length = int(headers.get("content-length", "0") or "0")
            if length > self.options.max_body_bytes:
                # the body is not read; the connection cannot be reused
                raise PayloadTooLargeError(
                    f"request body of {length} bytes exceeds the "
                    f"{self.options.max_body_bytes}-byte limit")
            body = await reader.readexactly(length) if length else b""
            keep_alive = headers.get("connection", "").lower() != "close"
            status, payload = await self._dispatch(
                method, route, body, self.service.request_deadline())
            return keep_alive, _response(
                status, payload,
                _TEXT if route == "/metrics" else _JSON,
                close=not keep_alive)
        except asyncio.IncompleteReadError:
            return False, b""
        except ServeError as exc:
            status = exc.http_status
            # 503/504 are transient by contract: tell the client when to
            # come back (the shielded computation is warming the cache)
            retry_after = self.options.retry_after_s \
                if status in (503, 504) else None
            return False, _response(
                status, _encode({"error": str(exc), "status": status}),
                close=True, retry_after=retry_after)
        except Exception as exc:
            status = 500
            obs.counter("repro_serve_internal_errors_total",
                        kind=type(exc).__name__).inc()
            # internal detail stays out of the response body
            return False, _response(
                500, _encode({"error": "internal server error",
                              "status": 500}), close=True)
        finally:
            obs.counter("repro_serve_requests_total",
                        route=route, status=status).inc()
            obs.histogram("repro_serve_request_latency_us",
                          route=route).observe(
                (time.perf_counter() - started) * 1e6)

    async def _dispatch(self, method: str, route: str, body: bytes,
                        deadline: Optional[float] = None
                        ) -> Tuple[int, bytes]:
        if route == "/predict":
            _require(method, "POST", route)
            payload, tier = await self.service.handle_predict(body, deadline)
            return 200, _with_tier(payload, tier)
        if route == "/advise":
            _require(method, "POST", route)
            payload, tier = await self.service.handle_advise(body, deadline)
            return 200, _with_tier(payload, tier)
        if route == "/campaign":
            _require(method, "POST", route)
            payload, tier = await self.service.handle_campaign(body, deadline)
            return 200, _with_tier(payload, tier)
        if route == "/metrics":
            _require(method, "GET", route)
            return 200, self.service.metrics_text().encode("utf-8")
        if route == "/healthz":
            _require(method, "GET", route)
            return 200, _encode(self.service.health_payload())
        raise UnknownRouteError(
            f"no handler at {route!r}; endpoints: /predict /advise "
            f"/campaign (POST), /metrics /healthz (GET)")


def _require(method: str, expected: str, route: str) -> None:
    if method != expected:
        raise MethodNotAllowedError(
            f"{route} only accepts {expected}, got {method}")


def _parse_header_block(blob: bytes) -> Tuple[str, str, dict]:
    lines = blob.split(b"\r\n")
    try:
        method, target, _version = lines[0].decode("ascii").split(" ", 2)
    except (UnicodeDecodeError, ValueError):
        raise ProtocolError(f"malformed request line {lines[0]!r}") from None
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(b":")
        if not sep:
            raise ProtocolError(f"malformed header line {line!r}")
        try:
            headers[name.decode("ascii").strip().lower()] = \
                value.decode("latin-1").strip()
        except UnicodeDecodeError:
            raise ProtocolError(f"undecodable header line {line!r}") from None
    return method, target, headers


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def run(options: Optional[ServeOptions] = None) -> None:
    """Blocking entry point: serve until interrupted."""
    server = ReproServer(options)

    async def main() -> None:
        host, port = await server.start()
        print(f"repro.serve listening on http://{host}:{port} "
              f"(store: {server.options.store_path or 'none'})")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass


class ServerThread:
    """Run a :class:`ReproServer` on a background thread's event loop.

    The shape tests, benchmarks and examples want::

        with ServerThread(ServeOptions(port=0)) as (host, port):
            ... issue real HTTP requests over localhost ...

    Entering starts the loop, binds the socket and returns the bound
    address; exiting stops the server and joins the thread.
    """

    def __init__(self, options: Optional[ServeOptions] = None,
                 service: Optional[PredictionService] = None):
        self.server = ReproServer(options, service)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    #: how long __enter__/__exit__ wait before giving up with a ServeError
    STARTUP_TIMEOUT_S = 30.0
    SHUTDOWN_TIMEOUT_S = 30.0

    def _thread_state(self) -> str:
        """One-line diagnosis of the server thread, for timeout errors."""
        thread = self._thread
        if thread is None:
            return "thread never started"
        return (f"thread {thread.name!r} "
                f"{'alive' if thread.is_alive() else 'dead'}, "
                f"loop {'running' if self._loop is not None and self._loop.is_running() else 'not running'}, "
                f"bound to {self.server.host}:{self.server.port}")

    def __enter__(self) -> Tuple[str, int]:
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=self.STARTUP_TIMEOUT_S):
            raise ServeError(
                f"repro.serve server thread did not become ready within "
                f"{self.STARTUP_TIMEOUT_S:g}s ({self._thread_state()})")
        if self._startup_error is not None:
            raise ServeError("repro.serve server failed to start "
                             f"({self._thread_state()})") \
                from self._startup_error
        assert self.server.host is not None and self.server.port is not None
        return self.server.host, self.server.port

    def __exit__(self, *exc_info) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            future = asyncio.run_coroutine_threadsafe(
                self.server.stop(), loop)
            try:
                future.result(timeout=self.SHUTDOWN_TIMEOUT_S)
            except (TimeoutError, FutureTimeoutError):
                future.cancel()
                raise ServeError(
                    f"repro.serve server did not stop within "
                    f"{self.SHUTDOWN_TIMEOUT_S:g}s — a drain or in-flight "
                    f"request is stuck ({self._thread_state()})") from None
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=self.SHUTDOWN_TIMEOUT_S)
            if self._thread.is_alive():
                raise ServeError(
                    f"repro.serve server thread did not exit within "
                    f"{self.SHUTDOWN_TIMEOUT_S:g}s of loop stop "
                    f"({self._thread_state()})")

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:     # surface bind/start failures
                self._startup_error = exc
                return
            finally:
                self._ready.set()
            loop.run_forever()
        finally:
            loop.close()


__all__ = ["ReproServer", "ServerThread", "run", "MAX_HEADER_BYTES"]
