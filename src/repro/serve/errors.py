"""Serve-layer errors, each carrying the HTTP status it maps to.

The split the handler relies on: :class:`ProtocolError` (and the other
4xx subclasses) means *the request is wrong* — the server reports the
problem in the response body and stays healthy — while any other
exception escaping a handler is *the server's fault* and maps to a 500
with the detail kept out of the response.
"""

from __future__ import annotations

from ..frontend.errors import ReproError


class ServeError(ReproError):
    """Base class for serve-layer failures; subclasses pin an HTTP status."""

    http_status = 500


class ProtocolError(ServeError, ValueError):
    """A malformed or invalid request (unknown field, bad type, bad value)."""

    http_status = 400


class UnknownRouteError(ServeError):
    """No handler is mounted at the requested path."""

    http_status = 404


class MethodNotAllowedError(ServeError):
    """The path exists but not under this HTTP method."""

    http_status = 405


class PayloadTooLargeError(ServeError):
    """The request body exceeds ``ServeOptions.max_body_bytes``."""

    http_status = 413


class OverloadedError(ServeError):
    """The server is shedding load: the compute queue is at
    ``ServeOptions.queue_max``, or the server is draining for shutdown.
    Transient by design — the response carries ``Retry-After``."""

    http_status = 503


class DeadlineExceededError(ServeError):
    """The request's ``ServeOptions.request_deadline_ms`` budget expired
    before a result was ready (including work shed from the batch queue
    because its deadline passed while queued)."""

    http_status = 504


__all__ = [
    "ServeError",
    "ProtocolError",
    "UnknownRouteError",
    "MethodNotAllowedError",
    "PayloadTooLargeError",
    "OverloadedError",
    "DeadlineExceededError",
]
