"""Cache-miss batching: collect misses, dispatch them to the worker pool.

Tier 3 of the serving path.  Misses are not computed one-by-one on the
event loop (which would stall every cached request behind a multi-ms
compile) and not thrown at the pool one-by-one either: a background
collector gathers whatever arrived within ``batch_window_ms`` (up to
``batch_max``), dispatches the whole batch to the worker threads at
once, and awaits the batch together.  Each dispatched batch is observable
as one unit — a ``serve_batch`` span, batch-size counters, and (through
the service's ``on_batch`` hook) a per-request-batch ``repro.obs``
manifest stamped next to the result store.

The queue is also the server's pressure valve (see ``docs/resilience.md``):

* :meth:`~BatchQueue.submit` **sheds** new work with
  :class:`~repro.serve.errors.OverloadedError` when the queue already
  holds ``queue_max`` pending items or the queue is draining for
  shutdown — better an honest 503 than an unbounded backlog;
* every queued item may carry a **deadline** (``time.monotonic()``
  stamp); work whose deadline passed while it waited is dropped at
  dispatch time with :class:`~repro.serve.errors.DeadlineExceededError`
  instead of burning a worker on an answer nobody is waiting for;
* :meth:`~BatchQueue.stop` *drains*: submissions are rejected
  immediately, but work already accepted is dispatched and completed
  (up to ``drain_timeout_s``) before the collector is cancelled.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Executor
from typing import Any, Callable, List, Optional, Tuple

from .. import obs
from .errors import DeadlineExceededError, OverloadedError

#: ``on_batch(items, results, wall_s)`` — results holds per-item outcomes
#: (a payload or the exception the worker raised).
BatchHook = Callable[[List[Any], List[Any], float], None]

#: ``on_shed(reason)`` — called whenever submit/dispatch drops work
#: (``queue_full`` | ``stopped`` | ``deadline``).
ShedHook = Callable[[str], None]


class BatchQueue:
    """An asyncio queue whose consumer dispatches batches to an executor."""

    def __init__(self, *, worker: Callable[[Any], Any], executor: Executor,
                 batch_max: int = 32, batch_window_s: float = 0.002,
                 queue_max: int = 1024,
                 on_batch: Optional[BatchHook] = None,
                 on_shed: Optional[ShedHook] = None):
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if queue_max < 1:
            raise ValueError(f"queue_max must be >= 1, got {queue_max}")
        self._worker = worker
        self._executor = executor
        self._batch_max = batch_max
        self._window_s = max(batch_window_s, 0.0)
        self._queue_max = queue_max
        self._on_batch = on_batch
        self._on_shed = on_shed
        self._queue: "asyncio.Queue[Tuple[Any, asyncio.Future, Optional[float]]]" = \
            asyncio.Queue()
        self._task: Optional[asyncio.Task] = None
        self._closed = False
        self._dispatching = False
        self.batches_dispatched = 0
        self.shed_total = 0       # queue_full + stopped rejections
        self.expired_total = 0    # deadline-expired drops at dispatch

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._task is None:
            self._closed = False
            self._task = asyncio.get_running_loop().create_task(
                self._collect(), name="repro-serve-batcher")

    async def stop(self, *, drain: bool = True,
                   drain_timeout_s: float = 10.0) -> None:
        """Stop the collector; with *drain*, finish accepted work first.

        New submissions are rejected (503) from the moment this is
        called; already-queued and in-flight work is given
        *drain_timeout_s* seconds to complete before the collector is
        cancelled and any leftovers are failed with
        :class:`OverloadedError`.
        """
        self._closed = True
        if drain and self._task is not None:
            deadline = time.monotonic() + max(drain_timeout_s, 0.0)
            while ((not self._queue.empty() or self._dispatching)
                   and time.monotonic() < deadline):
                await asyncio.sleep(0.005)
        if self._task is not None:
            task, self._task = self._task, None
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        while not self._queue.empty():
            _item, future, _deadline = self._queue.get_nowait()
            if not future.done():
                self._shed("stopped")
                future.set_exception(
                    OverloadedError("serve batch queue stopped"))

    # -- submission ---------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Pending (not yet dispatched) items — the health probe's gauge."""
        return self._queue.qsize()

    async def submit(self, item: Any,
                     deadline: Optional[float] = None) -> Any:
        """Enqueue *item* and await its worker result.

        *deadline* is an absolute ``time.monotonic()`` stamp; ``None``
        means the item waits as long as it takes.  Raises
        :class:`OverloadedError` when the queue is full or draining.
        """
        if self._closed or self._task is None:
            self._shed("stopped")
            raise OverloadedError("serve batch queue is not accepting work "
                                  "(stopped or draining)")
        if self._queue.qsize() >= self._queue_max:
            self._shed("queue_full")
            raise OverloadedError(
                f"serve batch queue is full ({self._queue_max} pending)")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((item, future, deadline))
        return await future

    def _shed(self, reason: str) -> None:
        if reason == "deadline":
            self.expired_total += 1
        else:
            self.shed_total += 1
        obs.counter("repro_shed_total", reason=reason).inc()
        if self._on_shed is not None:
            try:
                self._on_shed(reason)
            except Exception:
                pass  # pressure bookkeeping must never break the queue

    # -- the collector ------------------------------------------------------

    async def _collect(self) -> None:
        while True:
            entry = await self._queue.get()
            batch = [entry]
            # the window: let a herd of concurrent misses pile into this
            # batch instead of paying one dispatch each
            deadline = time.monotonic() + self._window_s
            while len(batch) < self._batch_max:
                timeout = deadline - time.monotonic()
                if timeout <= 0:
                    while (len(batch) < self._batch_max
                           and not self._queue.empty()):
                        batch.append(self._queue.get_nowait())
                    break
                try:
                    batch.append(await asyncio.wait_for(
                        self._queue.get(), timeout))
                except asyncio.TimeoutError:
                    break
            self._dispatching = True
            try:
                await self._dispatch(batch)
            finally:
                self._dispatching = False

    async def _dispatch(
            self,
            batch: List[Tuple[Any, asyncio.Future, Optional[float]]]) -> None:
        # shed work whose deadline passed while it sat in the queue: its
        # requester has already been told 504, computing would be waste
        now = time.monotonic()
        live: List[Tuple[Any, asyncio.Future, Optional[float]]] = []
        for item, future, item_deadline in batch:
            if item_deadline is not None and now >= item_deadline:
                self._shed("deadline")
                if not future.done():
                    future.set_exception(DeadlineExceededError(
                        "request deadline expired while queued"))
                continue
            live.append((item, future, item_deadline))
        if not live:
            return
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        self.batches_dispatched += 1
        obs.counter("repro_serve_batches_total").inc()
        obs.histogram("repro_serve_batch_size",
                      buckets=(1, 2, 4, 8, 16, 32, 64, 128)).observe(
            len(live))
        with obs.span("serve_batch", size=len(live)):
            results = await asyncio.gather(
                *(loop.run_in_executor(self._executor, self._worker, item)
                  for item, _future, _d in live),
                return_exceptions=True)
        for (_item, future, _d), result in zip(live, results):
            if future.done():
                continue
            if isinstance(result, BaseException):
                future.set_exception(result)
            else:
                future.set_result(result)
        if self._on_batch is not None:
            try:
                self._on_batch([item for item, _f, _d in live], list(results),
                               time.perf_counter() - started)
            except Exception:
                # manifest stamping must never take a batch down with it
                obs.counter("repro_serve_batch_hook_errors_total").inc()


__all__ = ["BatchQueue", "BatchHook", "ShedHook"]
