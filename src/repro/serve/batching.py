"""Cache-miss batching: collect misses, dispatch them to the worker pool.

Tier 3 of the serving path.  Misses are not computed one-by-one on the
event loop (which would stall every cached request behind a multi-ms
compile) and not thrown at the pool one-by-one either: a background
collector gathers whatever arrived within ``batch_window_ms`` (up to
``batch_max``), dispatches the whole batch to the worker threads at
once, and awaits the batch together.  Each dispatched batch is observable
as one unit — a ``serve_batch`` span, batch-size counters, and (through
the service's ``on_batch`` hook) a per-request-batch ``repro.obs``
manifest stamped next to the result store.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Executor
from typing import Any, Callable, List, Optional, Tuple

from .. import obs

#: ``on_batch(items, results, wall_s)`` — results holds per-item outcomes
#: (a payload or the exception the worker raised).
BatchHook = Callable[[List[Any], List[Any], float], None]


class BatchQueue:
    """An asyncio queue whose consumer dispatches batches to an executor."""

    def __init__(self, *, worker: Callable[[Any], Any], executor: Executor,
                 batch_max: int = 32, batch_window_s: float = 0.002,
                 on_batch: Optional[BatchHook] = None):
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        self._worker = worker
        self._executor = executor
        self._batch_max = batch_max
        self._window_s = max(batch_window_s, 0.0)
        self._on_batch = on_batch
        self._queue: "asyncio.Queue[Tuple[Any, asyncio.Future]]" = \
            asyncio.Queue()
        self._task: Optional[asyncio.Task] = None
        self._closed = False
        self.batches_dispatched = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._task is None:
            self._closed = False
            self._task = asyncio.get_running_loop().create_task(
                self._collect(), name="repro-serve-batcher")

    async def stop(self) -> None:
        self._closed = True
        if self._task is not None:
            task, self._task = self._task, None
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        while not self._queue.empty():
            _item, future = self._queue.get_nowait()
            if not future.done():
                future.set_exception(
                    RuntimeError("serve batch queue stopped"))

    # -- submission ---------------------------------------------------------

    async def submit(self, item: Any) -> Any:
        """Enqueue *item* and await its worker result."""
        if self._closed or self._task is None:
            raise RuntimeError("serve batch queue is not running")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((item, future))
        return await future

    # -- the collector ------------------------------------------------------

    async def _collect(self) -> None:
        while True:
            item, future = await self._queue.get()
            batch = [(item, future)]
            # the window: let a herd of concurrent misses pile into this
            # batch instead of paying one dispatch each
            deadline = time.monotonic() + self._window_s
            while len(batch) < self._batch_max:
                timeout = deadline - time.monotonic()
                if timeout <= 0:
                    while (len(batch) < self._batch_max
                           and not self._queue.empty()):
                        batch.append(self._queue.get_nowait())
                    break
                try:
                    batch.append(await asyncio.wait_for(
                        self._queue.get(), timeout))
                except asyncio.TimeoutError:
                    break
            await self._dispatch(batch)

    async def _dispatch(self,
                        batch: List[Tuple[Any, asyncio.Future]]) -> None:
        loop = asyncio.get_running_loop()
        started = time.perf_counter()
        self.batches_dispatched += 1
        obs.counter("repro_serve_batches_total").inc()
        obs.histogram("repro_serve_batch_size",
                      buckets=(1, 2, 4, 8, 16, 32, 64, 128)).observe(
            len(batch))
        with obs.span("serve_batch", size=len(batch)):
            results = await asyncio.gather(
                *(loop.run_in_executor(self._executor, self._worker, item)
                  for item, _future in batch),
                return_exceptions=True)
        for (_item, future), result in zip(batch, results):
            if future.done():
                continue
            if isinstance(result, BaseException):
                future.set_exception(result)
            else:
                future.set_result(result)
        if self._on_batch is not None:
            try:
                self._on_batch([item for item, _ in batch], list(results),
                               time.perf_counter() - started)
            except Exception:
                # manifest stamping must never take a batch down with it
                obs.counter("repro_serve_batch_hook_errors_total").inc()


__all__ = ["BatchQueue", "BatchHook"]
