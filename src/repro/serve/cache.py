"""The memory tier: an LRU over serialised response payloads.

Tier 1 of the serving path's three-tier resolution (memory → store →
compute).  Values are the JSON-encoded payload **bytes** — a hit costs a
dict lookup and zero re-serialisation, which is what the ≥10k cached
predictions/s floor is built on.  Hits and misses are counted per tier
through ``repro.obs`` (``repro_serve_cache_hits_total{tier="memory"}``,
``..._misses_total``), the counters the single-flight and smoke tests
assert against.
"""

from __future__ import annotations

from typing import Optional

from .. import obs
from ..stages import LRUCache


class ResponseCache:
    """Bounded LRU mapping request content keys to response payload bytes."""

    def __init__(self, maxsize: int):
        self._lru = LRUCache(maxsize)
        # raw-body fast path: byte-identical request bodies skip JSON
        # parsing and canonicalisation entirely (the thundering-herd shape:
        # many clients replaying one exact request)
        self._raw_keys = LRUCache(maxsize)

    @property
    def maxsize(self) -> int:
        return self._lru.maxsize

    def get(self, key: str) -> Optional[bytes]:
        payload = self._lru.get(key)
        if payload is not None:
            obs.counter("repro_serve_cache_hits_total", tier="memory").inc()
        else:
            obs.counter("repro_serve_cache_misses_total", tier="memory").inc()
        return payload

    def put(self, key: str, payload: bytes) -> None:
        self._lru.put(key, payload)

    # -- raw-body key memo --------------------------------------------------

    def key_for_body(self, body: bytes) -> Optional[str]:
        """The content key a byte-identical body canonicalised to, if seen."""
        return self._raw_keys.get(body)

    def remember_body(self, body: bytes, key: str) -> None:
        self._raw_keys.put(body, key)

    # -- maintenance --------------------------------------------------------

    def clear(self) -> None:
        self._lru.clear()
        self._raw_keys.clear()

    def keys(self) -> list:
        """Content keys from least- to most-recently used."""
        return self._lru.keys()

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, key: str) -> bool:
        return key in self._lru


__all__ = ["ResponseCache"]
