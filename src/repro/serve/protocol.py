"""Request/response schemas, eager options validation, and content keys.

Every request body is canonicalised into the same keying the
:class:`~repro.explore.store.ResultStore` already uses — a ``/predict``
request *is* a ``(ScenarioPoint, mode="predict")`` pair, so its content
hash is literally the store key and the persistent store doubles as the
second cache tier.  ``/advise`` and ``/campaign`` requests canonicalise
to their own hashed payloads (they have no store-record equivalent, so
they cache in the memory tier only).

Validation is **eager and total**, mirroring the ``NoiseOptions`` /
``SimulatorOptions`` convention from the simulator layer: unknown fields
and bad types are rejected where the request is read, with errors naming
the valid set — a malformed request can never reach a worker thread.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from math import isfinite
from typing import Any, Mapping, Optional

from ..explore.campaign import MODES, STRATEGIES
from ..explore.space import ProgramSpec, ScenarioPoint
from ..explore.store import program_sha, scenario_key
from ..suite import all_entries, get_entry
from ..system.registry import canonical_machine_name, machine_names
from .errors import ProtocolError, ServeError

#: Hard ceiling on requested partition sizes — the analytic predictor is
#: cheap but not free, and a served process must bound its worst request.
MAX_REQUEST_NPROCS = 16384

#: Valid fields of each request body, by endpoint.
PREDICT_FIELDS = ("app", "source", "size", "nprocs", "machine",
                  "grid_shape", "topology_shape", "params")
ADVISE_FIELDS = ("target", "size", "nprocs", "machine", "budget",
                 "simulate_top", "max_nprocs", "seed")
CAMPAIGN_FIELDS = ("name", "apps", "sizes", "proc_counts", "machines",
                   "strategy", "mode", "samples", "max_steps", "seed",
                   "shards")


# ---------------------------------------------------------------------------
# server options
# ---------------------------------------------------------------------------


@dataclass
class ServeOptions:
    """All user-controllable server parameters, validated at construction.

    Mirrors the ``NoiseOptions`` convention: a bad value raises
    :class:`ServeError` naming the field and its valid range where the
    options are *written*, and an unknown field fails in the dataclass
    constructor itself (``TypeError``).

    >>> ServeOptions(cache_size=0)          # doctest: +IGNORE_EXCEPTION_DETAIL
    Traceback (most recent call last):
    ...
    repro.serve.errors.ServeError: ...
    """

    host: str = "127.0.0.1"
    port: int = 8455                     # 0 asks the OS for an ephemeral port
    cache_size: int = 4096               # memory-tier LRU entries
    batch_max: int = 32                  # max cache-miss batch per dispatch
    batch_window_ms: float = 2.0         # how long a batch waits to fill
    workers: Optional[int] = None        # worker threads (None: min(8, cpus))
    store_path: Optional[str] = None     # ResultStore backing the 2nd tier
    telemetry: bool = True               # enable repro.obs on startup
    max_body_bytes: int = 1_048_576      # request-body ceiling (413 above)
    advise_budget_cap: int = 16          # per-request advisor budget ceiling
    campaign_point_cap: int = 512        # max points one /campaign may expand
    campaign_shard_cap: int = 8          # max shards= fan-out per /campaign
    request_deadline_ms: float = 0.0     # per-request budget; 0 = unlimited
    queue_max: int = 1024                # pending-compute ceiling (503 above)
    retry_after_s: float = 1.0           # Retry-After hint on 503/504
    compute_retries: int = 2             # transient compute-failure retries
    drain_timeout_s: float = 10.0        # graceful-stop drain budget

    def __post_init__(self) -> None:
        def positive_int(name: str, value: Any, minimum: int = 1) -> None:
            if isinstance(value, bool) or not isinstance(value, int) \
                    or value < minimum:
                raise ServeError(
                    f"ServeOptions.{name} must be an int >= {minimum}, "
                    f"got {value!r}")

        if not isinstance(self.host, str) or not self.host:
            raise ServeError(
                f"ServeOptions.host must be a non-empty string, "
                f"got {self.host!r}")
        if isinstance(self.port, bool) or not isinstance(self.port, int) \
                or not 0 <= self.port <= 65535:
            raise ServeError(
                f"ServeOptions.port must be an int in [0, 65535] "
                f"(0 = ephemeral), got {self.port!r}")
        positive_int("cache_size", self.cache_size)
        positive_int("batch_max", self.batch_max)
        if isinstance(self.batch_window_ms, bool) \
                or not isinstance(self.batch_window_ms, (int, float)) \
                or not isfinite(self.batch_window_ms) \
                or self.batch_window_ms < 0:
            raise ServeError(
                f"ServeOptions.batch_window_ms must be a finite number "
                f">= 0, got {self.batch_window_ms!r}")
        if self.workers is not None:
            positive_int("workers", self.workers)
        if self.store_path is not None and (
                not isinstance(self.store_path, str) or not self.store_path):
            raise ServeError(
                f"ServeOptions.store_path must be None or a non-empty "
                f"path string, got {self.store_path!r}")
        if not isinstance(self.telemetry, bool):
            raise ServeError(
                f"ServeOptions.telemetry must be a bool, "
                f"got {self.telemetry!r}")
        positive_int("max_body_bytes", self.max_body_bytes, minimum=1024)
        positive_int("advise_budget_cap", self.advise_budget_cap)
        positive_int("campaign_point_cap", self.campaign_point_cap)
        positive_int("campaign_shard_cap", self.campaign_shard_cap)

        def finite_number(name: str, value: Any, *,
                          minimum: float = 0.0) -> None:
            if isinstance(value, bool) \
                    or not isinstance(value, (int, float)) \
                    or not isfinite(value) or value < minimum:
                raise ServeError(
                    f"ServeOptions.{name} must be a finite number "
                    f">= {minimum}, got {value!r}")

        finite_number("request_deadline_ms", self.request_deadline_ms)
        positive_int("queue_max", self.queue_max)
        if isinstance(self.retry_after_s, bool) \
                or not isinstance(self.retry_after_s, (int, float)) \
                or not isfinite(self.retry_after_s) or self.retry_after_s <= 0:
            raise ServeError(
                f"ServeOptions.retry_after_s must be a finite number > 0, "
                f"got {self.retry_after_s!r}")
        if isinstance(self.compute_retries, bool) \
                or not isinstance(self.compute_retries, int) \
                or self.compute_retries < 0:
            raise ServeError(
                f"ServeOptions.compute_retries must be an int >= 0, "
                f"got {self.compute_retries!r}")
        finite_number("drain_timeout_s", self.drain_timeout_s)


# ---------------------------------------------------------------------------
# field validators (shared by the request parsers)
# ---------------------------------------------------------------------------


def _reject_unknown(payload: Mapping, valid: tuple[str, ...],
                    endpoint: str) -> None:
    if not isinstance(payload, Mapping):
        raise ProtocolError(
            f"{endpoint}: request body must be a JSON object, "
            f"got {type(payload).__name__}")
    unknown = sorted(set(payload) - set(valid))
    if unknown:
        raise ProtocolError(
            f"{endpoint}: unknown request field(s) {unknown}; "
            f"valid fields: {sorted(valid)}")


def _get_int(payload: Mapping, name: str, default: int | None,
             endpoint: str, *, minimum: int = 1,
             maximum: int | None = None) -> int | None:
    value = payload.get(name, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(
            f"{endpoint}: field {name!r} must be an integer, got {value!r}")
    if value < minimum or (maximum is not None and value > maximum):
        bound = f">= {minimum}" if maximum is None \
            else f"in [{minimum}, {maximum}]"
        raise ProtocolError(
            f"{endpoint}: field {name!r} must be {bound}, got {value}")
    return value


def _get_machine(payload: Mapping, endpoint: str,
                 default: str = "ipsc860") -> str:
    name = payload.get("machine", default)
    if not isinstance(name, str):
        raise ProtocolError(
            f"{endpoint}: field 'machine' must be a string, got {name!r}")
    try:
        return canonical_machine_name(name)
    except KeyError:
        raise ProtocolError(
            f"{endpoint}: unknown machine {name!r}; registered machines: "
            f"{machine_names()}") from None


def _get_shape(payload: Mapping, name: str, endpoint: str,
               *, rank: int | None = None) -> tuple[int, ...] | None:
    value = payload.get(name)
    if value is None:
        return None
    if not isinstance(value, (list, tuple)) or not value or any(
            isinstance(d, bool) or not isinstance(d, int) or d < 1
            for d in value):
        raise ProtocolError(
            f"{endpoint}: field {name!r} must be a list of positive "
            f"integers, got {value!r}")
    if rank is not None and len(value) != rank:
        raise ProtocolError(
            f"{endpoint}: field {name!r} must have exactly {rank} "
            f"dimensions, got {len(value)}")
    return tuple(int(d) for d in value)


def _get_params(payload: Mapping, endpoint: str) -> tuple[tuple[str, float], ...]:
    value = payload.get("params")
    if value is None:
        return ()
    if not isinstance(value, Mapping):
        raise ProtocolError(
            f"{endpoint}: field 'params' must be an object of "
            f"name -> number, got {value!r}")
    items = []
    for key, item in value.items():
        if not isinstance(key, str) or isinstance(item, bool) \
                or not isinstance(item, (int, float)) or not isfinite(item):
            raise ProtocolError(
                f"{endpoint}: params entry {key!r}: {item!r} is not a "
                f"finite number")
        items.append((key, float(item)))
    return tuple(sorted(items))


def _looks_like_source(text: str) -> bool:
    """Heuristic split between a suite key and HPF program text."""
    return "\n" in text or " " in text.strip()


# ---------------------------------------------------------------------------
# /predict
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PredictRequest:
    """One canonicalised ``POST /predict`` body.

    ``point`` + ``program`` are exactly what the campaign worker
    (:func:`repro.explore.campaign.evaluate_point`) consumes, and ``key``
    is the store's own ``scenario_key`` — tier 2 needs no translation.
    """

    point: ScenarioPoint
    program: Optional[ProgramSpec] = None
    key: str = field(default="", compare=False)

    @classmethod
    def from_payload(cls, payload: Mapping) -> "PredictRequest":
        _reject_unknown(payload, PREDICT_FIELDS, "/predict")
        app = payload.get("app")
        source = payload.get("source")
        if (app is None) == (source is None):
            raise ProtocolError(
                "/predict: exactly one of 'app' (suite key) or 'source' "
                "(HPF program text) is required")
        program: ProgramSpec | None = None
        if source is not None:
            if not isinstance(source, str) or not source.strip():
                raise ProtocolError(
                    "/predict: field 'source' must be non-empty HPF "
                    "program text")
            app_key = f"adhoc-{program_sha(source)[:8]}"
            program = ProgramSpec(key=app_key, source=source)
            default_size = 16
        else:
            if not isinstance(app, str):
                raise ProtocolError(
                    f"/predict: field 'app' must be a string suite key, "
                    f"got {app!r}")
            try:
                entry = get_entry(app)
            except KeyError:
                raise ProtocolError(
                    f"/predict: unknown suite app {app!r}; known: "
                    f"{sorted(all_entries())}") from None
            app_key = entry.key
            default_size = entry.sizes[0]
        point = ScenarioPoint(
            app=app_key,
            size=_get_int(payload, "size", default_size, "/predict"),
            nprocs=_get_int(payload, "nprocs", 4, "/predict",
                            maximum=MAX_REQUEST_NPROCS),
            machine=_get_machine(payload, "/predict"),
            topology_shape=_get_shape(payload, "topology_shape",
                                      "/predict", rank=2),
            grid_shape=_get_shape(payload, "grid_shape", "/predict"),
            params=_get_params(payload, "/predict"),
        )
        key = scenario_key(point.scenario_dict(), "predict",
                           program.source if program is not None else None)
        return cls(point=point, program=program, key=key)


# ---------------------------------------------------------------------------
# /advise
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AdviseRequest:
    """One canonicalised ``POST /advise`` body."""

    target: str                      # suite key or HPF source text
    size: Optional[int]
    nprocs: int
    machine: str
    budget: int
    simulate_top: int
    max_nprocs: int
    seed: int
    key: str = field(default="", compare=False)

    @classmethod
    def from_payload(cls, payload: Mapping,
                     options: ServeOptions) -> "AdviseRequest":
        _reject_unknown(payload, ADVISE_FIELDS, "/advise")
        target = payload.get("target")
        if not isinstance(target, str) or not target.strip():
            raise ProtocolError(
                "/advise: field 'target' (suite key or HPF source text) "
                "is required")
        if not _looks_like_source(target):
            try:
                get_entry(target)
            except KeyError:
                raise ProtocolError(
                    f"/advise: unknown suite app {target!r}; known: "
                    f"{sorted(all_entries())} (or pass HPF source "
                    f"text)") from None
        request = cls(
            target=target,
            size=_get_int(payload, "size", None, "/advise"),
            nprocs=_get_int(payload, "nprocs", 4, "/advise",
                            maximum=MAX_REQUEST_NPROCS),
            machine=_get_machine(payload, "/advise"),
            budget=_get_int(payload, "budget",
                            min(12, options.advise_budget_cap), "/advise",
                            maximum=options.advise_budget_cap),
            simulate_top=_get_int(payload, "simulate_top", 0, "/advise",
                                  minimum=0, maximum=4),
            max_nprocs=_get_int(payload, "max_nprocs", 64, "/advise",
                                maximum=MAX_REQUEST_NPROCS),
            seed=_get_int(payload, "seed", 0, "/advise", minimum=0),
        )
        key = request_key("advise", {
            "target_sha": program_sha(target),
            "size": request.size, "nprocs": request.nprocs,
            "machine": request.machine, "budget": request.budget,
            "simulate_top": request.simulate_top,
            "max_nprocs": request.max_nprocs, "seed": request.seed,
        })
        object.__setattr__(request, "key", key)
        return request


# ---------------------------------------------------------------------------
# /campaign
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignRequest:
    """One canonicalised ``POST /campaign`` body."""

    name: str
    apps: tuple[str, ...]
    sizes: tuple[int, ...]
    proc_counts: tuple[int, ...]
    machines: tuple[str, ...]
    strategy: str
    mode: str
    samples: Optional[int]
    max_steps: int
    seed: int
    shards: int = 1                      # > 1: sharded worker-process fan-out
    key: str = field(default="", compare=False)

    @classmethod
    def from_payload(cls, payload: Mapping,
                     options: ServeOptions) -> "CampaignRequest":
        _reject_unknown(payload, CAMPAIGN_FIELDS, "/campaign")

        def str_tuple(name: str, default: tuple[str, ...],
                      check) -> tuple[str, ...]:
            value = payload.get(name)
            if value is None:
                return default
            if not isinstance(value, (list, tuple)) or not value or any(
                    not isinstance(item, str) for item in value):
                raise ProtocolError(
                    f"/campaign: field {name!r} must be a non-empty list "
                    f"of strings, got {value!r}")
            return tuple(check(item) for item in value)

        def int_tuple(name: str, default: tuple[int, ...],
                      maximum: int | None = None) -> tuple[int, ...]:
            value = payload.get(name)
            if value is None:
                return default
            if not isinstance(value, (list, tuple)) or not value or any(
                    isinstance(item, bool) or not isinstance(item, int)
                    or item < 1 or (maximum is not None and item > maximum)
                    for item in value):
                raise ProtocolError(
                    f"/campaign: field {name!r} must be a non-empty list "
                    f"of positive integers"
                    + (f" <= {maximum}" if maximum else "")
                    + f", got {value!r}")
            return tuple(int(item) for item in value)

        def suite_app(app: str) -> str:
            try:
                return get_entry(app).key
            except KeyError:
                raise ProtocolError(
                    f"/campaign: unknown suite app {app!r}; known: "
                    f"{sorted(all_entries())}") from None

        def campaign_machine(name: str) -> str:
            try:
                return canonical_machine_name(name)
            except KeyError:
                raise ProtocolError(
                    f"/campaign: unknown machine {name!r}; registered "
                    f"machines: {machine_names()}") from None

        name = payload.get("name", "served-campaign")
        if not isinstance(name, str) or not name:
            raise ProtocolError(
                f"/campaign: field 'name' must be a non-empty string, "
                f"got {name!r}")
        strategy = payload.get("strategy", "grid")
        if strategy not in STRATEGIES:
            raise ProtocolError(
                f"/campaign: unknown strategy {strategy!r}; known: "
                f"{STRATEGIES}")
        mode = payload.get("mode", "predict")
        if mode not in MODES:
            raise ProtocolError(
                f"/campaign: unknown mode {mode!r}; known: {MODES}")
        shards = _get_int(payload, "shards", 1, "/campaign",
                          maximum=options.campaign_shard_cap)
        if shards > 1 and strategy not in ("grid", "random"):
            raise ProtocolError(
                f"/campaign: strategy {strategy!r} does not decompose over "
                f"shards; sharded campaigns support 'grid' and 'random'")
        request = cls(
            name=name,
            apps=str_tuple("apps", ("laplace_block_star",), suite_app),
            sizes=int_tuple("sizes", (16,)),
            proc_counts=int_tuple("proc_counts", (4,),
                                  maximum=MAX_REQUEST_NPROCS),
            machines=str_tuple("machines", ("ipsc860",), campaign_machine),
            strategy=strategy,
            mode=mode,
            samples=_get_int(payload, "samples", None, "/campaign"),
            max_steps=_get_int(payload, "max_steps", 16, "/campaign",
                               maximum=256),
            seed=_get_int(payload, "seed", 0, "/campaign", minimum=0),
            shards=shards,
        )
        key = request_key("campaign", {
            "name": request.name, "apps": list(request.apps),
            "sizes": list(request.sizes),
            "proc_counts": list(request.proc_counts),
            "machines": list(request.machines),
            "strategy": request.strategy, "mode": request.mode,
            "samples": request.samples, "max_steps": request.max_steps,
            "seed": request.seed, "shards": request.shards,
        })
        object.__setattr__(request, "key", key)
        return request


def request_key(kind: str, payload: Mapping) -> str:
    """Stable content hash of one canonicalised non-predict request."""
    canonical = json.dumps({"kind": kind, "payload": dict(payload)},
                           sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]


__all__ = [
    "MAX_REQUEST_NPROCS",
    "PREDICT_FIELDS",
    "ADVISE_FIELDS",
    "CAMPAIGN_FIELDS",
    "ServeOptions",
    "PredictRequest",
    "AdviseRequest",
    "CampaignRequest",
    "request_key",
]
