"""repro.serve — prediction-as-a-service over the repro library.

A stdlib-only asyncio HTTP+JSON server exposing the compile-time
performance model as network endpoints:

* ``POST /predict`` — one scenario, resolved through three tiers
  (memory LRU → result store → batched compute with single-flight
  dedup),
* ``POST /advise`` — a bounded advisor run,
* ``POST /campaign`` — a declarative sweep, sized-capped per server,
* ``GET /metrics`` — Prometheus exposition of the ``repro.obs``
  registry,
* ``GET /healthz`` — liveness (``ok`` | ``degraded``) and capacity
  gauges.

Resilience (``docs/resilience.md``): per-request deadlines (504 +
``Retry-After`` when ``ServeOptions.request_deadline_ms`` expires),
queue-depth load shedding (503 above ``ServeOptions.queue_max``),
transient-failure retries around compute, and graceful drain on stop.

Quick start::

    from repro.serve import ServeOptions, ServerThread

    with ServerThread(ServeOptions(port=0, store_path="runs.jsonl")) as \
            (host, port):
        ...  # POST http://{host}:{port}/predict

or from a shell: ``python -m repro.serve --port 8455 --store runs.jsonl``.
"""

from .errors import (
    DeadlineExceededError,
    MethodNotAllowedError,
    OverloadedError,
    PayloadTooLargeError,
    ProtocolError,
    ServeError,
    UnknownRouteError,
)
from .protocol import (
    AdviseRequest,
    CampaignRequest,
    PredictRequest,
    ServeOptions,
    request_key,
)
from .service import PredictionService, serve_manifest_path
from .server import ReproServer, ServerThread, run

__all__ = [
    "AdviseRequest",
    "CampaignRequest",
    "DeadlineExceededError",
    "MethodNotAllowedError",
    "OverloadedError",
    "PayloadTooLargeError",
    "PredictRequest",
    "PredictionService",
    "ProtocolError",
    "ReproServer",
    "ServeError",
    "ServeOptions",
    "ServerThread",
    "UnknownRouteError",
    "request_key",
    "run",
    "serve_manifest_path",
]
