"""CLI entry point: ``python -m repro.serve [--port N] [--store PATH] ...``"""

from __future__ import annotations

import argparse
import sys

from .errors import ServeError
from .protocol import ServeOptions
from .server import run


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve HPF/Fortran 90D performance predictions "
                    "over HTTP.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8455,
                        help="TCP port; 0 picks an ephemeral port "
                             "(default: 8455)")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="JSONL result store backing the persistent "
                             "cache tier (default: no store)")
    parser.add_argument("--cache-size", type=int, default=4096,
                        help="in-memory response cache entries "
                             "(default: 4096)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker threads for cache-miss computes "
                             "(default: min(8, cpu count))")
    parser.add_argument("--batch-max", type=int, default=32,
                        help="max cache misses dispatched per batch "
                             "(default: 32)")
    parser.add_argument("--batch-window-ms", type=float, default=2.0,
                        help="miss-collection window in milliseconds "
                             "(default: 2.0)")
    parser.add_argument("--no-telemetry", action="store_true",
                        help="do not enable repro.obs telemetry")
    ns = parser.parse_args(argv)
    try:
        options = ServeOptions(
            host=ns.host, port=ns.port, store_path=ns.store,
            cache_size=ns.cache_size, workers=ns.workers,
            batch_max=ns.batch_max, batch_window_ms=ns.batch_window_ms,
            telemetry=not ns.no_telemetry)
    except ServeError as exc:
        parser.error(str(exc))
    run(options)
    return 0


if __name__ == "__main__":
    sys.exit(main())
