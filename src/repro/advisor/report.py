"""Ranked recommendations and their plain-text rendering.

A :class:`Recommendation` joins one evaluated mutation to its baseline: the
predicted speedup, a confidence grade (how well the interpreted ranking is
corroborated by the execution simulator, when the advisor spent simulation
budget on it) and a one-line explanation tracing back to the originating
:class:`~repro.advisor.diagnose.Finding`.  :class:`AdvisorReport` is the
object :func:`repro.advise` returns; ``render()`` produces the findings
section and the ranked table through the Output Module.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..explore.store import ScenarioResult
from ..output.report import format_us, render_table
from .diagnose import Finding
from .mutations import Mutation

#: Confidence grades, strongest first.
CONFIDENCES = ("high", "medium", "low", "interpreted-only")


@dataclass(frozen=True)
class Recommendation:
    """One evaluated mutation, ranked against the baseline scenario."""

    mutation: Mutation
    result: ScenarioResult
    baseline: ScenarioResult
    confidence: str = "interpreted-only"

    @property
    def finding(self) -> Finding:
        return self.mutation.finding

    @property
    def predicted_speedup(self) -> float:
        candidate = self.result.objective_us
        base = self.baseline.objective_us
        return base / candidate if candidate > 0 else float("nan")

    @property
    def improves(self) -> bool:
        return self.predicted_speedup > 1.0

    def explanation(self) -> str:
        """One line: diagnosis -> edit -> expected effect."""
        return (f"{self.finding.kind}: {self.mutation.description} — "
                f"{self.mutation.rationale}; predicted "
                f"{format_us(self.baseline.objective_us)} -> "
                f"{format_us(self.result.objective_us)} "
                f"({self.predicted_speedup:.2f}x)")


@dataclass
class AdvisorReport:
    """Everything one ``repro.advise`` call produced."""

    target: str
    baseline: ScenarioResult
    findings: list[Finding] = field(default_factory=list)
    recommendations: list[Recommendation] = field(default_factory=list)
    candidates_evaluated: int = 0
    store_hits: int = 0
    #: True when the result store disagreed with the fresh baseline (it
    #: predated a predictor change) and was bypassed and superseded.
    store_refreshed: bool = False

    def best(self) -> Recommendation:
        if not self.recommendations:
            raise ValueError(
                f"the advisor found no improving candidate for {self.target!r}")
        return self.recommendations[0]

    def top(self, n: int = 5) -> list[Recommendation]:
        return self.recommendations[:n]

    # -- rendering ------------------------------------------------------------

    def findings_text(self) -> str:
        if not self.findings:
            return "no bottleneck findings (the configuration looks healthy)"
        return "\n".join("  - " + finding.describe() for finding in self.findings)

    def to_table(self, n: int = 10) -> str:
        rows = []
        for rank, rec in enumerate(self.top(n), start=1):
            rows.append([
                rank,
                rec.mutation.kind,
                rec.mutation.description,
                format_us(rec.result.objective_us),
                f"{rec.predicted_speedup:.2f}x",
                rec.confidence,
                rec.finding.kind,
            ])
        if not rows:
            return "(no improving candidates found)"
        return render_table(
            ["#", "mutation", "edit", "predicted", "speedup", "confidence",
             "finding"],
            rows,
            title=f"Recommendations for {self.baseline.point.label()} "
                  f"(baseline {format_us(self.baseline.objective_us)})")

    def render(self) -> str:
        head = (f"Advisor report for {self.target!r}: "
                f"{len(self.findings)} findings, "
                f"{len(self.recommendations)} improving candidates "
                f"({self.candidates_evaluated} evaluated, "
                f"{self.store_hits} store hits)")
        if self.store_refreshed:
            head += ("\nnote: the result store predated a predictor change; "
                     "stale records were re-evaluated and superseded")
        sections = [head, "findings:\n" + self.findings_text(), self.to_table()]
        if self.recommendations:
            sections.append("top recommendation: "
                            + self.best().explanation())
        return "\n\n".join(sections)
