"""Performance advisor: automated bottleneck diagnosis and directive
recommendation.

The paper's whole point (§1, §5.2) is that interpretive compile-time
prediction should *guide* the HPF programmer — pick distributions, system
sizes and machines without ever running the program.  The workbench shows
the evidence (profiles, per-phase breakdowns); this subsystem closes the
loop from "here is your bottleneck" to "change this directive and expect
this speedup":

* :mod:`~repro.advisor.diagnose`  — walk the interpreted SAAG/metrics tree
  (per-phase and per-line computation/communication/overhead, the static
  load-imbalance estimate) into structured, located :class:`Finding` s,
* :mod:`~repro.advisor.mutations` — typed candidate edits of a scenario:
  distribution swaps, nprocs changes, machine retargets, topology-layout
  pins, each traced to the finding that motivated it,
* :mod:`~repro.advisor.search`    — :func:`advise`: drive the candidates
  through the design-space exploration machinery (store-memoised, parallel,
  optionally refined by the ``genetic``/``anneal`` campaign strategies),
* :mod:`~repro.advisor.report`    — ranked :class:`Recommendation` s with
  predicted speedup, simulator-corroborated confidence and a one-line
  explanation.

>>> from repro import advise
>>> report = advise("finance", nprocs=4, size=256)
>>> print(report.render())
>>> report.best().explanation()
"""

from .diagnose import (
    COMM_SHARE_THRESHOLD,
    IMBALANCE_THRESHOLD,
    Finding,
    diagnose,
)
from .mutations import (
    Mutation,
    directive_alternates,
    generate_mutations,
    register_directive_alternates,
)
from .report import AdvisorReport, Recommendation
from .search import advise

__all__ = [
    "COMM_SHARE_THRESHOLD",
    "IMBALANCE_THRESHOLD",
    "Finding",
    "diagnose",
    "Mutation",
    "directive_alternates",
    "generate_mutations",
    "register_directive_alternates",
    "AdvisorReport",
    "Recommendation",
    "advise",
]
