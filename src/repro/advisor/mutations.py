"""Candidate scenario edits the advisor proposes against a diagnosis.

A :class:`Mutation` is one typed, human-readable edit of a
:class:`~repro.explore.space.ScenarioPoint`: swap the DISTRIBUTE/ALIGN
directive set for a registered alternative, change the processor count,
retarget the machine, or pin a different (rows, cols) layout on a shaped
interconnect.  Each mutation carries the :class:`~repro.advisor.diagnose.
Finding` that motivated it, so a recommendation can always be traced back to
the diagnosis that produced it.

Directive swaps work on *alternate groups*: sets of suite keys that are the
same program under different directives (the three Laplace distributions ship
as the built-in group, exactly the §5.2.1 choice).  User code can register
its own groups with :func:`register_directive_alternates`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..explore.space import ScenarioPoint, default_grid_shape
from ..system import SHAPED_KINDS, get_machine, machine_names, near_square_shape
from .diagnose import Finding

#: Suite keys that are the same application under different directive sets.
_ALTERNATE_GROUPS: list[tuple[str, ...]] = [
    ("laplace_block_block", "laplace_block_star", "laplace_star_block"),
]

#: Largest processor count a scale-up mutation will propose.
DEFAULT_MAX_NPROCS = 64


def register_directive_alternates(group: tuple[str, ...]) -> None:
    """Register *group* as interchangeable directive alternatives.

    Every key must name a suite entry (or a ProgramSpec the caller sweeps);
    the advisor will propose swapping any member for any other.
    """
    if len(group) < 2:
        raise ValueError("an alternates group needs at least two members")
    _ALTERNATE_GROUPS.append(tuple(group))


def directive_alternates(app: str) -> tuple[str, ...]:
    """The registered directive alternatives for *app* (excluding itself)."""
    out: list[str] = []
    for group in _ALTERNATE_GROUPS:
        if app in group:
            out.extend(member for member in group if member != app)
    return tuple(dict.fromkeys(out))


@dataclass(frozen=True)
class Mutation:
    """One candidate edit of a scenario, traced to its motivating finding."""

    kind: str
    description: str
    rationale: str
    target: ScenarioPoint
    finding: Finding

    def label(self) -> str:
        return f"{self.kind}: {self.description}"


def _retarget(point: ScenarioPoint, machine: str) -> ScenarioPoint:
    # a pinned layout belongs to the old interconnect; drop it on retarget
    return replace(point, machine=machine, topology_shape=None)


def _with_nprocs(point: ScenarioPoint, nprocs: int) -> ScenarioPoint:
    return replace(point, nprocs=nprocs, topology_shape=None,
                   grid_shape=default_grid_shape(point.app, nprocs))


def _factor_pairs(n: int) -> list[tuple[int, int]]:
    out = []
    for rows in range(1, n + 1):
        if n % rows == 0:
            out.append((rows, n // rows))
    return out


def generate_mutations(
    point: ScenarioPoint,
    findings: list[Finding],
    *,
    machines: tuple[str, ...] | None = None,
    max_nprocs: int = DEFAULT_MAX_NPROCS,
    allow_reshape: bool = True,
) -> list[Mutation]:
    """All distinct candidate mutations the findings suggest, in severity order.

    ``machines`` bounds the retarget pool (default: every registered machine);
    ``max_nprocs`` bounds scale-up proposals.  ``allow_reshape=False``
    suppresses topology-layout proposals — the advisor does this when the
    baseline machine is an unregistered :class:`Machine` instance, whose
    layout the registry cannot rebuild.  Candidates are deduplicated on
    their target point — the first (most severe) finding to propose a target
    keeps it, so every mutation is traced to the strongest motivation.
    """
    machine_pool = tuple(machines) if machines is not None \
        else tuple(machine_names())
    seen: set[ScenarioPoint] = {point}
    out: list[Mutation] = []

    def propose(kind: str, description: str, rationale: str,
                target: ScenarioPoint, finding: Finding) -> None:
        if target in seen:
            return
        seen.add(target)
        out.append(Mutation(kind=kind, description=description,
                            rationale=rationale, target=target,
                            finding=finding))

    for finding in findings:
        for suggestion in finding.suggests:
            if suggestion == "swap-distribution":
                for alternate in directive_alternates(point.app):
                    propose(
                        "swap-distribution",
                        f"{point.app} -> {alternate}",
                        "a different DISTRIBUTE/ALIGN choice changes which "
                        "dimension communicates",
                        replace(point, app=alternate,
                                grid_shape=default_grid_shape(alternate,
                                                              point.nprocs)),
                        finding)

            elif suggestion == "retarget-machine":
                for machine in machine_pool:
                    if machine == point.machine:
                        continue
                    propose(
                        "retarget-machine",
                        f"{point.machine} -> {machine}",
                        "a different interconnect class shifts the "
                        "computation/communication balance",
                        _retarget(point, machine),
                        finding)

            elif suggestion in ("scale-nprocs", "reduce-nprocs",
                                "change-nprocs"):
                candidates: list[int] = []
                if suggestion in ("scale-nprocs", "change-nprocs"):
                    candidates += [point.nprocs * 2, point.nprocs * 4]
                if suggestion in ("reduce-nprocs", "change-nprocs"):
                    candidates += [point.nprocs // 2]
                for nprocs in candidates:
                    if nprocs < 1 or nprocs > max_nprocs or nprocs == point.nprocs:
                        continue
                    direction = "more parallelism amortises the serial and " \
                        "per-node costs" if nprocs > point.nprocs else \
                        "fewer nodes cut the communication and overhead bill"
                    propose(
                        "change-nprocs",
                        f"p={point.nprocs} -> p={nprocs}",
                        direction,
                        _with_nprocs(point, nprocs),
                        finding)

            elif suggestion == "reshape-topology":
                if not allow_reshape:
                    continue
                try:
                    kind = get_machine(point.machine, 2).topology_kind
                except KeyError:
                    continue    # unregistered machine: no layout to rebuild
                if kind not in SHAPED_KINDS:
                    continue
                # an unpinned layout is the near-square default, so proposing
                # that shape would just re-evaluate the baseline
                current = point.topology_shape or near_square_shape(point.nprocs)
                for shape in _factor_pairs(point.nprocs):
                    if shape == current:
                        continue
                    propose(
                        "reshape-topology",
                        f"layout {shape[0]}x{shape[1]} on {point.machine}",
                        "a layout matched to the communication pattern "
                        "shortens the hot paths",
                        replace(point, topology_shape=shape),
                        finding)

    return out
