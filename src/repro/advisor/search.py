"""The advisor driver: diagnose, mutate, evaluate, rank.

:func:`advise` closes the loop the paper leaves to the reader: it interprets
the baseline scenario, walks the metrics tree for bottleneck
:class:`~repro.advisor.diagnose.Finding` s, generates the typed
:class:`~repro.advisor.mutations.Mutation` s those findings suggest, drives
every candidate through the design-space exploration machinery
(:func:`repro.explore.evaluate_points`, with all its dedup, parallelism and
persistent :class:`~repro.explore.store.ResultStore` memoisation) and returns
the candidates that measurably improve the predicted time, ranked, explained
and — when simulation budget is granted — cross-checked against the
execution simulator for a confidence grade.

An optional ``refine`` pass widens the targeted mutations into a proper
search: the union of the candidate axis values becomes a
:class:`~repro.explore.space.ScenarioSpace` and the ``genetic`` or ``anneal``
campaign strategy explores recombinations the one-edit mutations cannot
reach.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from .. import obs
from ..explore.campaign import (
    MachineResolver,
    compile_scenario,
    evaluate_point,
    evaluate_points,
    run_campaign,
)
from ..explore.space import (
    ProgramSpec,
    ScenarioPoint,
    ScenarioSpace,
    default_grid_shape,
)
from ..explore.store import ResultStore, ScenarioResult
from ..interpreter import interpret
from ..suite import get_entry
from ..suite.registry import SuiteEntry
from ..system import (
    Machine,
    canonical_machine_name,
    get_machine,
    resolve_machine,
)
from .diagnose import Finding, diagnose
from .mutations import Mutation, generate_mutations
from .report import AdvisorReport, Recommendation

#: Simulated-vs-interpreted agreement bands for the confidence grade (%).
HIGH_CONFIDENCE_ERROR_PCT = 15.0
MEDIUM_CONFIDENCE_ERROR_PCT = 30.0

#: Baseline drift (vs the stored record) above which the store is treated as
#: predating a predictor change; predictions are analytic, so exact in
#: practice (same tolerance as the CI campaign smoke).
STALE_DRIFT_TOLERANCE_PCT = 0.01

REFINE_STRATEGIES = ("genetic", "anneal")


def _resolve_target(target: str) -> tuple[str, SuiteEntry | None,
                                          ProgramSpec | None]:
    """(app key, suite entry, ad-hoc program) for a suite key or HPF source."""
    if "\n" not in target:
        try:
            entry = get_entry(target)
            return entry.key, entry, None
        except KeyError:
            raise KeyError(
                f"advise target {target!r} is neither a suite key nor HPF "
                f"source text (sources span multiple lines)") from None
    program = ProgramSpec(key="adhoc", source=target,
                          description="ad-hoc advise() target")
    return program.key, None, program


def _machine_resolver_for(
    baseline_machine: Machine, baseline_name: str,
) -> MachineResolver:
    """Resolver that honours a caller-supplied Machine *instance* for the
    baseline while still building mutated (retargeted) machines by name."""
    def resolver(point: ScenarioPoint) -> Machine:
        if point.machine == baseline_name:
            return resolve_machine(baseline_machine, point.nprocs)
        return get_machine(point.machine, point.nprocs,
                           topology_shape=point.topology_shape)
    return resolver


def _refinement_space(points: list[ScenarioPoint],
                      program: ProgramSpec | None) -> ScenarioSpace:
    """The smallest ScenarioSpace spanning every candidate axis value."""
    def ordered(values):
        return tuple(dict.fromkeys(values))
    return ScenarioSpace(
        apps=ordered(p.app for p in points),
        sizes=ordered(p.size for p in points),
        proc_counts=tuple(sorted({p.nprocs for p in points})),
        machines=ordered(p.machine for p in points),
        topology_shapes=ordered(p.topology_shape for p in points),
        param_sets=ordered(p.params for p in points),
        programs=(program,) if program is not None else (),
    )


def _confidence(baseline: ScenarioResult | None,
                candidate: ScenarioResult | None) -> str:
    """Grade how well the simulator corroborates the interpreted ranking."""
    if baseline is None or candidate is None \
            or baseline.measured_us is None or candidate.measured_us is None:
        return "interpreted-only"
    corroborated = candidate.measured_us < baseline.measured_us
    worst_error = max(baseline.abs_error_pct, candidate.abs_error_pct)
    if corroborated and worst_error < HIGH_CONFIDENCE_ERROR_PCT:
        return "high"
    if corroborated and worst_error < MEDIUM_CONFIDENCE_ERROR_PCT:
        return "medium"
    return "low"


def advise(
    target: str,
    *,
    size: int | None = None,
    nprocs: int = 4,
    machine: Machine | str = "ipsc860",
    topology_shape: tuple[int, int] | None = None,
    params: tuple[tuple[str, float], ...] = (),
    store: ResultStore | None = None,
    budget: int = 24,
    simulate_top: int = 1,
    machines: tuple[str, ...] | None = None,
    max_nprocs: int = 64,
    refine: str | None = None,
    seed: int = 0,
    max_workers: int | None = None,
) -> AdvisorReport:
    """Diagnose *target* and recommend directive/configuration changes.

    The advisor closes the paper's design-tuning loop: interpret the
    baseline, walk its metrics into located findings, generate typed
    candidate edits (distribution swaps, nprocs changes, machine retargets,
    topology reshapes), evaluate them through the predictor, and rank what
    actually improves the predicted time.

    Args:
        target: a suite key (``"finance"``, ``"laplace_block_block"``, …) or
            HPF source text for an ad-hoc program.
        size: problem size; ``None`` picks the entry's second-smallest
            paper size (64 for ad-hoc sources).
        nprocs: baseline process count.
        machine: baseline target — registered name (canonicalised, aliases
            welcome) or a :class:`Machine` instance.
        topology_shape: pin a (rows, cols) interconnect layout for the
            baseline (registry names only).
        params: extra ``((name, value), ...)`` program parameter overrides.
        store: a :class:`~repro.explore.store.ResultStore` memoising every
            evaluation persistently (re-advising a stored scenario is free).
        budget: cap on targeted-mutation candidates evaluated through the
            predictor.
        simulate_top: how many leading candidates also get an
            execution-simulator run for a confidence grade (0 disables).
        machines: candidate retarget machines (default: whole registry).
        max_nprocs: upper bound for nprocs-scaling mutations.
        refine: optionally widen the targeted mutations with a
            ``"genetic"`` or ``"anneal"`` campaign over their axis values;
            adds its own evaluations on top of ``budget``.
        seed: determinism seed for the refinement strategies.
        max_workers: parallelism for candidate evaluation.

    Returns:
        An :class:`~repro.advisor.report.AdvisorReport`: ``baseline`` result,
        ``findings`` (located bottleneck diagnoses), and
        ``recommendations`` — candidates that improve the predicted time,
        best first, each with a predicted speedup, confidence grade, and the
        finding that motivated it.

    Raises:
        ValueError: unknown ``refine`` strategy, or a refine/topology_shape
            combination that needs a registry machine name but got an
            instance.
        KeyError: ``machine`` names no registered machine.
        ScenarioError: the baseline scenario is invalid for its space.

    Example:
        >>> from repro import advise
        >>> report = advise("laplace_star_block", size=16, nprocs=4,
        ...                 budget=4, simulate_top=0)
        >>> report.baseline.estimated_us > 0
        True
        >>> for rec in report.top(2):           # doctest: +SKIP
        ...     print(rec.explanation())
    """
    if refine is not None and refine not in REFINE_STRATEGIES:
        raise ValueError(f"unknown refine strategy {refine!r}; "
                         f"known: {REFINE_STRATEGIES}")
    if refine is not None and isinstance(machine, Machine):
        raise ValueError(
            "refine= needs a registry machine *name*: the refinement "
            "campaign rebuilds machines by name in its workers, which an "
            "unregistered Machine instance cannot cross")
    key, entry, program = _resolve_target(target)
    if size is None:
        size = entry.sizes[1] if entry is not None and len(entry.sizes) > 1 \
            else (entry.sizes[0] if entry is not None else 64)

    machine_is_instance = isinstance(machine, Machine)
    if machine_is_instance and topology_shape is not None:
        raise ValueError(
            "topology_shape= cannot be combined with a Machine instance: "
            "set the shape on the instance (machine.topology_shape) or pass "
            "the registry name instead")
    # canonicalise registry aliases ("hypercube" -> "ipsc860") so the
    # retarget mutations recognise the baseline machine and scenario keys
    # stay canonical; an instance keeps its own display name
    machine_name = machine.name if machine_is_instance \
        else canonical_machine_name(machine)
    resolver = _machine_resolver_for(machine, machine_name) \
        if machine_is_instance else None

    point = ScenarioPoint(
        app=key, size=int(size), nprocs=int(nprocs), machine=machine_name,
        topology_shape=topology_shape,
        grid_shape=default_grid_shape(key, int(nprocs)),
        params=tuple((str(k), float(v)) for k, v in params),
    )

    # -- diagnose the baseline through the interpretation parse ---------------
    # the exact compile path (and cache) every candidate evaluation uses
    with obs.span("diagnose", app=key, nprocs=int(nprocs)):
        compiled, options = compile_scenario(point, program)
        baseline_machine = resolver(point) if resolver is not None else \
            get_machine(machine_name, point.nprocs,
                        topology_shape=topology_shape)
        interpretation = interpret(compiled, baseline_machine, options=options)
        findings = diagnose(interpretation, entry)

    # the diagnosis interpretation *is* the baseline prediction — seed the
    # evaluation memo (and the store) with it instead of interpreting twice
    baseline_result = ScenarioResult(
        point=point, mode="predict",
        estimated_us=interpretation.predicted_time_us,
        comp_us=interpretation.total.computation,
        comm_us=interpretation.total.communication,
        ovhd_us=interpretation.total.overhead,
        grid_shape=tuple(compiled.mapping.grid.shape),
        program_source=program.source if program is not None else None,
    )
    program_for = (lambda app: program if program is not None
                   and app == program.key else None)

    # The always-fresh baseline doubles as a drift sentinel for the store: if
    # the stored baseline disagrees with today's interpretation, the store
    # predates a predictor change, and serving candidates from it would rank
    # a new-model baseline against old-model candidates.  In that case every
    # candidate is re-evaluated fresh and the stale records are superseded.
    store_refreshed = False
    if store is not None:
        cached = store.get_point(point, "predict",
                                 program.source if program is not None else None)
        if cached is not None and cached.estimated_us not in (None, 0):
            drift_pct = abs(baseline_result.estimated_us - cached.estimated_us) \
                / cached.estimated_us * 100.0
            store_refreshed = drift_pct > STALE_DRIFT_TOLERANCE_PCT
        store.add(baseline_result, replace=store_refreshed)

    def persist(results):
        """Write fresh results into the store, superseding only records whose
        values actually changed (no duplicate superseding lines)."""
        for result in results:
            existing = store.get(result.key)
            if existing is None:
                store.add(result)
            elif (existing.estimated_us != result.estimated_us
                  or existing.measured_us != result.measured_us):
                store.add(result, replace=True)

    def evaluate(batch, mode, memo=None):
        """evaluate_points, bypassing and superseding a stale store."""
        if store is not None and store_refreshed:
            results, _, fresh = evaluate_points(
                batch, mode=mode, store=None, program_for=program_for,
                machine_resolver=resolver, max_workers=max_workers, memo=memo)
            persist(results)
            return results, 0, fresh
        return evaluate_points(
            batch, mode=mode, store=store, program_for=program_for,
            machine_resolver=resolver, max_workers=max_workers, memo=memo)

    def served_set(batch, mode):
        """The points of *batch* the store would serve rather than evaluate."""
        out: set[ScenarioPoint] = set()
        if store is None or store_refreshed:
            return out
        for candidate in batch:
            prog = program_for(candidate.app)
            if store.get_point(candidate, mode,
                               prog.source if prog is not None else None) \
                    is not None:
                out.add(candidate)
        return out

    def stale_probes(results, served, mode):
        """Spot-check the store-served records against fresh evaluations.

        One probe per distinct (application, machine) group among the served
        records — a predictor or simulator change can be scoped to a single
        machine's parameter set or one application's model, so a single
        global probe is not enough, while everything inside one group moves
        together.  Returns (any group was stale, the fresh probe results).
        """
        by_group: dict[tuple[str, str], ScenarioResult] = {}
        for result in results:
            if result.point not in served:
                continue
            group = (result.point.app, result.point.machine)
            best = by_group.get(group)
            if best is None or result.objective_us < best.objective_us:
                by_group[group] = result
        stale = False
        probes: list[ScenarioResult] = []
        for probe in by_group.values():
            fresh_probe = evaluate_point(
                probe.point, mode=mode,
                program=program_for(probe.point.app),
                machine_resolver=resolver)
            probes.append(fresh_probe)
            for stored, current in (
                    (probe.estimated_us, fresh_probe.estimated_us),
                    (probe.measured_us, fresh_probe.measured_us)):
                if stored and current is not None:
                    if abs(current - stored) / stored * 100.0 \
                            > STALE_DRIFT_TOLERANCE_PCT:
                        stale = True
        return stale, probes

    def evaluate_guarded(batch, mode, memo=None):
        """Evaluate *batch*, certifying any store-served records.

        The one staleness-retry path both the candidate (predict) and
        simulator-cross-check (both) phases go through: probe the served
        records per group; on drift, flip the refresh flag, re-evaluate
        everything not already fresh this call, and supersede the stale
        store lines.
        """
        nonlocal store_refreshed
        served = served_set(batch, mode)
        results, hits, fresh = evaluate(batch, mode, memo=memo)
        stale, probes = stale_probes(results, served, mode)
        if stale:
            store_refreshed = True
            retry_memo = dict(memo) if memo is not None else {}
            retry_memo.update({r.point: r for r in results
                               if r.point not in served})
            retry_memo.update({p.point: p for p in probes})
            results, _, retried = evaluate_points(
                batch, mode=mode, store=None, program_for=program_for,
                machine_resolver=resolver, max_workers=max_workers,
                memo=retry_memo)
            persist(results)
            hits, fresh = 0, fresh + retried + len(probes)
        return results, hits, fresh

    # -- generate and evaluate candidates -------------------------------------
    # an unregistered Machine instance has no registry entry to rebuild a
    # reshaped layout from, so layout proposals are suppressed for it
    mutations = generate_mutations(point, findings, machines=machines,
                                   max_nprocs=max_nprocs,
                                   allow_reshape=not machine_is_instance)[:budget]
    # Second staleness guard (inside evaluate_guarded): the baseline
    # sentinel cannot fire when the store holds candidate scenarios but not
    # the baseline itself, so the served records are spot-checked per
    # (application, machine) group against fresh interpretations — a few
    # extra interpretations buy the guarantee that a stale store can never
    # steer the ranking.
    targets = [m.target for m in mutations]
    obs.counter("repro_advisor_candidates_total").inc(len(targets))
    with obs.span("candidates", count=len(targets)):
        candidate_results, hits, fresh = evaluate_guarded(
            targets, "predict", memo={point: baseline_result})
    store_hits, evaluated = hits, fresh

    candidates: list[tuple[Mutation, ScenarioResult]] = \
        list(zip(mutations, candidate_results))
    result_memo = {point: baseline_result}
    result_memo.update({m.target: r
                        for m, r in zip(mutations, candidate_results)})

    # -- optional genetic/anneal refinement over the candidate axes -----------
    if refine is not None:
        space = _refinement_space([point] + [m.target for m in mutations],
                                  program)
        # The refinement never READS the store: the staleness guards above
        # only certify the baseline and mutation records, so a store-served
        # recombination record could smuggle old-model numbers past them.
        # Its inputs come memo-seeded from the (guarded) candidate phase,
        # anything genuinely new is interpreted fresh, and the outputs are
        # persisted with value-comparing supersede.
        with obs.span("refine", strategy=refine):
            run = run_campaign(space, name=f"advise-{key}-{refine}",
                               mode="predict", strategy=refine, store=None,
                               seed=seed, max_workers=max_workers,
                               memo=result_memo)
        if store is not None:
            persist(run.results)
        store_hits += run.store_hits
        evaluated += run.evaluated
        known = {point} | {m.target for m in mutations}
        search_finding = Finding(
            kind="search", severity=0.0,
            message=f"recombination found by the {refine} campaign strategy "
                    f"over the mutation axes",
            suggests=())
        for result in run.results:
            if result.point in known:
                continue
            known.add(result.point)
            candidates.append((Mutation(
                kind=f"search({refine})",
                description=result.point.label(),
                rationale="axis recombination beyond any single edit",
                target=result.point,
                finding=search_finding,
            ), result))

    # -- rank what improves ----------------------------------------------------
    baseline_objective = baseline_result.objective_us
    improving = [(mutation, result) for mutation, result in candidates
                 if result.objective_us < baseline_objective]
    improving.sort(key=lambda pair: pair[1].objective_us)
    recommendations = [
        Recommendation(mutation=mutation, result=result,
                       baseline=baseline_result)
        for mutation, result in improving
    ]

    # -- simulator cross-check for the leaders --------------------------------
    if simulate_top > 0 and recommendations:
        leaders = recommendations[:simulate_top]
        sim_points = [point] + [rec.result.point for rec in leaders]
        # the predict-mode sentinels say nothing about measured_us, so served
        # "both" records get the same guarded treatment (a simulator change
        # moves measurements without moving estimates)
        with obs.span("simulate_check", count=len(sim_points)):
            sim_results, hits, fresh = evaluate_guarded(sim_points, "both")
        store_hits += hits
        evaluated += fresh
        sim_by_point = {r.point: r for r in sim_results}
        sim_baseline = sim_by_point.get(point)
        for index, rec in enumerate(leaders):
            grade = _confidence(sim_baseline, sim_by_point.get(rec.result.point))
            recommendations[index] = dc_replace(rec, confidence=grade)

    return AdvisorReport(
        target=target if "\n" not in target else f"<source:{key}>",
        baseline=baseline_result,
        findings=findings,
        recommendations=recommendations,
        candidates_evaluated=evaluated,
        store_hits=store_hits,
        store_refreshed=store_refreshed,
    )
