"""Bottleneck diagnosis over the interpreted SAAG and its metrics.

The paper's framework stops at *showing* the user a profile (Figures 6 & 7:
per-phase computation / communication / overhead bars); this module walks the
same interpreted metrics tree — cumulative breakdown, per-AAU and per-line
metrics, per-phase profiles, the static load-imbalance estimate — and turns
what it finds into structured :class:`Finding` s: a severity, a located cause
("Phase 1 shift comm dominates at p=4 under laplace_block_star") and the
mutation kinds (:mod:`repro.advisor.mutations`) that attack it.

Findings are *diagnoses*, not recommendations: the search layer
(:mod:`repro.advisor.search`) evaluates the mutations each finding suggests
and only what measurably improves the predicted time becomes a
recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..interpreter.engine import InterpretationResult
from ..output.profile import phase_profile
from ..suite.registry import SuiteEntry

#: Diagnosis thresholds: share of predicted time (or ratio, for imbalance)
#: above which a finding is emitted.
COMM_SHARE_THRESHOLD = 0.25
OVERHEAD_SHARE_THRESHOLD = 0.30
IMBALANCE_THRESHOLD = 1.10
HOTSPOT_SHARE_THRESHOLD = 0.15
COMPUTE_SHARE_THRESHOLD = 0.45

#: Finding kinds, in the vocabulary the mutation generator understands.
KINDS = ("comm-bound", "phase-comm", "comm-hotspot", "overhead-bound",
         "load-imbalance", "compute-bound")


@dataclass(frozen=True)
class Finding:
    """One diagnosed bottleneck with its located cause.

    ``severity`` is the fraction of the predicted time the finding implicates
    (for load imbalance: the fraction lost to the slowest rank), so findings
    from different rules rank on one scale.  ``suggests`` names the mutation
    kinds worth trying against it.
    """

    kind: str
    severity: float
    message: str
    phase: str | None = None
    line: int | None = None
    metric_us: float = 0.0
    suggests: tuple[str, ...] = ()

    def describe(self) -> str:
        where = ""
        if self.phase:
            where = f" [{self.phase}]"
        elif self.line:
            where = f" [line {self.line}]"
        return f"{self.kind}{where} ({self.severity * 100.0:.0f}%): {self.message}"


def _context_label(result: InterpretationResult) -> str:
    compiled = result.compiled
    return (f"p={compiled.nprocs} on {result.machine.name} "
            f"under {compiled.name}")


def diagnose(
    result: InterpretationResult,
    entry: SuiteEntry | None = None,
    *,
    comm_threshold: float = COMM_SHARE_THRESHOLD,
    overhead_threshold: float = OVERHEAD_SHARE_THRESHOLD,
    imbalance_threshold: float = IMBALANCE_THRESHOLD,
) -> list[Finding]:
    """Walk the interpreted metrics and emit findings, most severe first.

    ``entry`` (the suite registry entry, when the program has one) supplies
    the application-phase line ranges of the Figure 6/7 breakdown, which
    turn whole-program findings into phase-located ones.
    """
    total = result.total
    total_us = total.total
    if total_us <= 0:
        return []
    findings: list[Finding] = []
    context = _context_label(result)

    # -- whole-program balance ------------------------------------------------
    comm_share = total.communication / total_us
    ovhd_share = total.overhead / total_us
    comp_share = total.computation / total_us

    if comm_share >= comm_threshold:
        findings.append(Finding(
            kind="comm-bound",
            severity=comm_share,
            metric_us=total.communication,
            message=(f"communication takes {comm_share * 100.0:.0f}% of the "
                     f"predicted time {context}; a different distribution, "
                     f"interconnect or layout can shrink it"),
            suggests=("swap-distribution", "retarget-machine",
                      "reshape-topology", "reduce-nprocs"),
        ))

    if ovhd_share >= overhead_threshold:
        findings.append(Finding(
            kind="overhead-bound",
            severity=ovhd_share,
            metric_us=total.overhead,
            message=(f"runtime overheads (startup, loop/guard bookkeeping) "
                     f"take {ovhd_share * 100.0:.0f}% of the predicted time "
                     f"{context}; the problem is too small for this "
                     f"configuration"),
            suggests=("reduce-nprocs", "retarget-machine"),
        ))

    imbalance = result.load_imbalance
    if imbalance >= imbalance_threshold:
        lost = (1.0 - 1.0 / imbalance) * comp_share
        findings.append(Finding(
            kind="load-imbalance",
            severity=lost,
            metric_us=total.computation - total.balanced,
            message=(f"static load imbalance {imbalance:.2f}x {context}: the "
                     f"block partition leaves the slowest rank "
                     f"{(imbalance - 1.0) * 100.0:.0f}% more iterations than "
                     f"the mean; a processor count or layout that divides the "
                     f"extents evens it out"),
            suggests=("change-nprocs", "reshape-topology", "swap-distribution"),
        ))

    # -- phase-located communication (the Figure 6/7 walk) --------------------
    phase_ranges = entry.phase_line_ranges() if entry is not None else {}
    if phase_ranges:
        profile = phase_profile(result, phase_ranges)
        for prof_entry in profile.entries:
            phase_total = prof_entry.metrics.total
            if phase_total <= 0:
                continue
            phase_comm_share = prof_entry.metrics.communication / phase_total
            share_of_program = prof_entry.metrics.communication / total_us
            if phase_comm_share >= comm_threshold and share_of_program >= 0.10:
                findings.append(Finding(
                    kind="phase-comm",
                    severity=share_of_program,
                    phase=prof_entry.label,
                    line=prof_entry.line,
                    metric_us=prof_entry.metrics.communication,
                    message=(f"{prof_entry.label} communication dominates "
                             f"({phase_comm_share * 100.0:.0f}% of the phase, "
                             f"{share_of_program * 100.0:.0f}% of the program) "
                             f"{context}"),
                    suggests=("swap-distribution", "retarget-machine",
                              "reshape-topology"),
                ))

    # -- the single worst communication line ----------------------------------
    comm_lines = [(line, metrics)
                  for line, metrics in result.line_breakdown().items()
                  if metrics.communication > 0]
    if comm_lines:
        line, metrics = max(comm_lines, key=lambda item: item[1].communication)
        share = metrics.communication / total_us
        if share >= HOTSPOT_SHARE_THRESHOLD:
            text = result.compiled.source.line_text(line).strip()
            constructs = sorted({a.type_name for a in result.saag.at_line(line)
                                 if a.type_name in ("Comm", "Sync", "Reduce")})
            what = "/".join(constructs) or "Comm"
            findings.append(Finding(
                kind="comm-hotspot",
                severity=share,
                line=line,
                metric_us=metrics.communication,
                message=(f"{what} at line {line} ({text!r}) alone carries "
                         f"{share * 100.0:.0f}% of the predicted time "
                         f"{context}"),
                suggests=("swap-distribution", "retarget-machine"),
            ))

    # -- healthy compute-dominated programs want more parallelism -------------
    if comp_share >= COMPUTE_SHARE_THRESHOLD:
        findings.append(Finding(
            kind="compute-bound",
            severity=comp_share * 0.5,   # an opportunity, not a pathology
            metric_us=total.computation,
            message=(f"computation takes {comp_share * 100.0:.0f}% of the "
                     f"predicted time {context}; the program still scales — "
                     f"more processors or a faster node should pay off"),
            suggests=("scale-nprocs", "retarget-machine"),
        ))

    findings.sort(key=lambda f: f.severity, reverse=True)
    return findings
