"""The Synchronized Application Abstraction Graph (SAAG).

§3.2: *"The communication/synchronization structure of the application is
superimposed onto the AAG by augmenting the graph with a set of edges
corresponding to the communications or synchronization between AAU's.  The
resulting structure is the Synchronized Application Abstraction Graph."*

An edge connects the AAU that produces/holds data with the communication AAU
that moves it (or connects two communication AAUs that must be ordered).  The
SAAG also owns the communication table and the critical-variable report that
the abstraction parse produces alongside it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .aag import AAG
from .aau import AAU
from .comm_table import CommunicationTable
from .critical_vars import CriticalVariableReport


@dataclass(frozen=True)
class SyncEdge:
    """A communication/synchronisation dependence between two AAUs."""

    source_id: int
    target_id: int
    kind: str = "comm"            # 'comm' | 'sync' | 'reduce'
    array: str = ""
    comm_entry: Optional[int] = None   # index into the communication table

    def describe(self) -> str:
        what = f" [{self.array}]" if self.array else ""
        return f"AAU {self.source_id} --{self.kind}{what}--> AAU {self.target_id}"


@dataclass
class SAAG:
    """AAG plus communication edges, communication table and critical variables."""

    aag: AAG
    edges: list[SyncEdge] = field(default_factory=list)
    comm_table: CommunicationTable = field(default_factory=CommunicationTable)
    critical_variables: CriticalVariableReport = field(default_factory=CriticalVariableReport)

    # -- delegation to the AAG -------------------------------------------------

    @property
    def root(self) -> AAU:
        return self.aag.root

    def walk(self):
        return self.aag.walk()

    def find(self, aau_id: int) -> Optional[AAU]:
        return self.aag.find(aau_id)

    def at_line(self, line: int) -> list[AAU]:
        return self.aag.at_line(line)

    def by_type(self, aau_type) -> list[AAU]:
        return self.aag.by_type(aau_type)

    # -- edges -----------------------------------------------------------------

    def add_edge(self, edge: SyncEdge) -> SyncEdge:
        self.edges.append(edge)
        return edge

    def edges_from(self, aau_id: int) -> list[SyncEdge]:
        return [e for e in self.edges if e.source_id == aau_id]

    def edges_to(self, aau_id: int) -> list[SyncEdge]:
        return [e for e in self.edges if e.target_id == aau_id]

    def describe(self) -> str:
        lines = [self.aag.describe()]
        lines.append(f"synchronisation edges ({len(self.edges)}):")
        lines.extend("  " + e.describe() for e in self.edges)
        lines.append(self.comm_table.describe())
        lines.append(self.critical_variables.describe())
        return "\n".join(lines)
