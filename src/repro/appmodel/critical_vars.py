"""Critical variable identification and resolution (§4.2).

*"The abstraction parse also identifies all critical variables in the
application description; a critical variable being defined as a variable whose
value effects the flow of execution, e.g. a loop limit.  The critical
variables are then resolved either by tracing their definition paths or by
allowing the user to explicitly specify their values."*

We implement both resolution mechanisms:

* **tracing** — walk the declaration section (PARAMETER constants) and simple
  scalar assignments whose right-hand sides are constant expressions;
* **user specification** — the ``overrides`` mapping passed to the
  interpretation engine (this is how problem sizes are swept in the
  experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..frontend import ast_nodes as ast
from ..frontend.symbols import SymbolTable, try_eval_const


@dataclass
class CriticalVariable:
    """One variable whose value affects control flow."""

    name: str
    roles: list[str] = field(default_factory=list)   # 'loop limit', 'forall bound', ...
    lines: list[int] = field(default_factory=list)
    value: Optional[float] = None
    resolution: str = "unresolved"  # 'parameter' | 'traced' | 'user' | 'unresolved'

    def describe(self) -> str:
        value = f"= {self.value:g}" if self.value is not None else "(unresolved)"
        roles = ", ".join(sorted(set(self.roles)))
        return f"{self.name} {value} [{roles}] via {self.resolution}"


@dataclass
class CriticalVariableReport:
    """All critical variables of a program and how each was resolved."""

    variables: dict[str, CriticalVariable] = field(default_factory=dict)

    def add_role(self, name: str, role: str, line: int) -> CriticalVariable:
        key = name.lower()
        var = self.variables.setdefault(key, CriticalVariable(name=key))
        var.roles.append(role)
        var.lines.append(line)
        return var

    def unresolved(self) -> list[CriticalVariable]:
        return [v for v in self.variables.values() if v.value is None]

    def resolved_env(self) -> dict[str, float]:
        return {name: v.value for name, v in self.variables.items() if v.value is not None}

    def __len__(self) -> int:
        return len(self.variables)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self.variables

    def get(self, name: str) -> Optional[CriticalVariable]:
        return self.variables.get(name.lower())

    def describe(self) -> str:
        if not self.variables:
            return "no critical variables"
        lines = [f"critical variables ({len(self.variables)}):"]
        lines.extend("  " + v.describe() for v in sorted(self.variables.values(),
                                                         key=lambda v: v.name))
        return "\n".join(lines)


def _collect_expr_names(expr: ast.Expr | None, report: CriticalVariableReport,
                        role: str, line: int) -> None:
    if expr is None:
        return
    for name in ast.expr_variables(expr):
        report.add_role(name, role, line)


def identify_critical_variables(program: ast.Program) -> CriticalVariableReport:
    """Scan a program (original or normalised) for control-flow-critical variables."""
    report = CriticalVariableReport()

    def visit(stmts: list[ast.Stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.DoLoop):
                _collect_expr_names(stmt.start, report, "loop limit", stmt.line)
                _collect_expr_names(stmt.end, report, "loop limit", stmt.line)
                _collect_expr_names(stmt.step, report, "loop step", stmt.line)
                visit(stmt.body)
            elif isinstance(stmt, ast.DoWhile):
                _collect_expr_names(stmt.cond, report, "while condition", stmt.line)
                visit(stmt.body)
            elif isinstance(stmt, ast.ForallStmt):
                for trip in stmt.triplets:
                    _collect_expr_names(trip.lo, report, "forall bound", stmt.line)
                    _collect_expr_names(trip.hi, report, "forall bound", stmt.line)
                    _collect_expr_names(trip.step, report, "forall stride", stmt.line)
                _collect_expr_names(stmt.mask, report, "forall mask", stmt.line)
            elif isinstance(stmt, ast.WhereStmt):
                _collect_expr_names(stmt.mask, report, "where mask", stmt.line)
            elif isinstance(stmt, ast.IfBlock):
                for cond, body in stmt.branches:
                    _collect_expr_names(cond, report, "branch condition", stmt.line)
                    visit(body)
                visit(stmt.else_body)

    visit(program.body)
    return report


def _trace_simple_definitions(program: ast.Program, env: Mapping[str, float]) -> dict[str, float]:
    """Trace straight-line scalar assignments with constant right-hand sides.

    Walks the executable body in order; later reassignments overwrite earlier
    ones (the last statically-known value is what a loop bound most likely
    sees, matching the paper's "tracing their definition paths" behaviour for
    simple programs).
    """
    traced: dict[str, float] = dict(env)

    def visit(stmts: list[ast.Stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Assignment) and isinstance(stmt.target, ast.Var):
                value = try_eval_const(stmt.value, traced)
                if value is not None:
                    traced[stmt.target.name.lower()] = value
            elif isinstance(stmt, ast.IfBlock):
                for _, body in stmt.branches:
                    visit(body)
                visit(stmt.else_body)
            # Do not descend into loops: loop-carried updates are not static.

    visit(program.body)
    return traced


def resolve_critical_variables(
    program: ast.Program,
    symtable: SymbolTable,
    overrides: Mapping[str, float] | None = None,
    base_env: Mapping[str, float] | None = None,
) -> CriticalVariableReport:
    """Identify and resolve the program's critical variables.

    Resolution order (highest priority first): explicit user ``overrides``,
    PARAMETER constants / compile-time environment, traced simple definitions.
    """
    report = identify_critical_variables(program)
    param_env = dict(base_env) if base_env else symtable.parameter_env()
    traced_env = _trace_simple_definitions(program, param_env)
    overrides = {k.lower(): float(v) for k, v in (overrides or {}).items()}

    for name, var in report.variables.items():
        if name in overrides:
            var.value = overrides[name]
            var.resolution = "user"
        elif name in param_env:
            var.value = float(param_env[name])
            var.resolution = "parameter"
        elif name in traced_env:
            var.value = float(traced_env[name])
            var.resolution = "traced"
        else:
            sym = symtable.get(name)
            if sym is not None and sym.init is not None:
                value = try_eval_const(sym.init, param_env)
                if value is not None:
                    var.value = value
                    var.resolution = "traced"
    return report
