"""Application Module: AAU / AAG / SAAG abstraction of an HPF program.

Implements the abstraction parse of Phase 2: the SPMD node program is
characterized into Application Abstraction Units (per programming construct or
communication operation), combined into the Application Abstraction Graph,
augmented with communication/synchronisation edges (SAAG), the communication
table and the critical-variable report, then machine-specifically filtered.
"""

from .aag import AAG
from .aau import AAU, AAUType
from .builder import AAGBuilder, build_aag, build_saag
from .comm_table import CommTableEntry, CommunicationTable
from .critical_vars import (
    CriticalVariable,
    CriticalVariableReport,
    identify_critical_variables,
    resolve_critical_variables,
)
from .machine_filter import FilterOptions, apply_machine_filter
from .saag import SAAG, SyncEdge

__all__ = [
    "AAG",
    "AAU",
    "AAUType",
    "AAGBuilder",
    "build_aag",
    "build_saag",
    "CommTableEntry",
    "CommunicationTable",
    "CriticalVariable",
    "CriticalVariableReport",
    "identify_critical_variables",
    "resolve_critical_variables",
    "FilterOptions",
    "apply_machine_filter",
    "SAAG",
    "SyncEdge",
]
