"""The Application Abstraction Graph (AAG).

AAUs are combined to abstract the control structure of the application,
forming a rooted tree.  The AAG supports the queries the output module needs:
lookup by id, lookup by source line (for per-line metrics), and sub-graph
selection (cumulative metrics for a branch of the AAG).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .aau import AAU, AAUType


@dataclass
class AAG:
    """A rooted tree of AAUs abstracting one program's control structure."""

    root: AAU
    program_name: str = "main"
    _line_index: dict[int, list[AAU]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.rebuild_line_index()

    # -- indices -----------------------------------------------------------

    def rebuild_line_index(self) -> None:
        self._line_index = {}
        for aau in self.root.walk():
            self._line_index.setdefault(aau.line, []).append(aau)

    def at_line(self, line: int) -> list[AAU]:
        """All AAUs abstracting the given physical source line."""
        return list(self._line_index.get(line, []))

    def in_line_range(self, first: int, last: int) -> list[AAU]:
        out: list[AAU] = []
        for line in range(first, last + 1):
            out.extend(self._line_index.get(line, []))
        return out

    # -- traversal -----------------------------------------------------------

    def walk(self) -> Iterator[AAU]:
        return self.root.walk()

    def find(self, aau_id: int) -> Optional[AAU]:
        return self.root.find(aau_id)

    def by_type(self, aau_type: AAUType) -> list[AAU]:
        return self.root.by_type(aau_type)

    def count(self) -> int:
        return self.root.count()

    def max_id(self) -> int:
        return max(aau.id for aau in self.walk())

    def comm_aaus(self) -> list[AAU]:
        return self.by_type(AAUType.COMM) + self.by_type(AAUType.SYNC)

    def describe(self) -> str:
        return f"AAG for program '{self.program_name}' ({self.count()} AAUs)\n" + \
            self.root.describe(indent=1)
