"""The communication table (§4.2, abstraction parse).

*"A communication table is generated to store the specifications and status of
each communication/synchronization."*  Every communication operation detected
by Phase 1 gets an entry recording what is communicated, in which pattern, at
which AAU, and — once the interpretation or simulation has run — its status
and realised cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class CommTableEntry:
    """One communication/synchronisation operation known to the framework."""

    entry_id: int
    aau_id: int
    kind: str                      # shift | gather | broadcast | reduce | writeback | barrier
    array: str = ""
    axis: Optional[int] = None
    offset: int = 0
    reduce_op: Optional[str] = None
    element_size: int = 4
    elements_per_proc: float = 0.0
    bytes_per_proc: float = 0.0
    line: int = 0
    status: str = "pending"        # pending | interpreted | simulated
    estimated_time: float = 0.0    # µs, filled by the interpretation parse
    measured_time: float = 0.0     # µs, filled by the simulator (if run)

    def describe(self) -> str:
        size = f"{self.bytes_per_proc:.0f} B/proc" if self.bytes_per_proc else "size tbd"
        extra = f" op={self.reduce_op}" if self.reduce_op else ""
        axis = f" axis={self.axis}" if self.axis is not None else ""
        return (f"#{self.entry_id} AAU {self.aau_id} {self.kind}({self.array}){axis}"
                f" offset={self.offset}{extra} [{size}] status={self.status}")


@dataclass
class CommunicationTable:
    """All communication operations of one program, in AAU order."""

    entries: list[CommTableEntry] = field(default_factory=list)

    def add(self, entry: CommTableEntry) -> CommTableEntry:
        self.entries.append(entry)
        return entry

    def new_entry(self, **kwargs) -> CommTableEntry:
        entry = CommTableEntry(entry_id=len(self.entries), **kwargs)
        return self.add(entry)

    def for_aau(self, aau_id: int) -> list[CommTableEntry]:
        return [e for e in self.entries if e.aau_id == aau_id]

    def by_kind(self, kind: str) -> list[CommTableEntry]:
        return [e for e in self.entries if e.kind == kind]

    def total_bytes_per_proc(self) -> float:
        return sum(e.bytes_per_proc for e in self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def describe(self) -> str:
        if not self.entries:
            return "communication table: empty"
        lines = [f"communication table: {len(self.entries)} entries"]
        lines.extend("  " + entry.describe() for entry in self.entries)
        return "\n".join(lines)
