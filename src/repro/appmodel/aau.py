"""Application Abstraction Units (AAUs).

§3.2: *"Machine independent application abstraction is performed by
recursively characterizing the application description into Application
Abstraction Units (AAU's).  Each AAU represents a standard programming
construct (such as iterative, conditional, sequential) or a communication/
synchronization operation, and parameterizes its behavior."*

Each AAU carries:

* its type (sequential, iterative, conditional, communication, reduction, ...),
* the source line it abstracts (for the per-line output queries),
* a reference to the SPMD node it was built from (the machine-specific filter
  and the interpretation functions read the details from there),
* its children (the AAG is a rooted tree), and
* the name of the SAU whose parameters it is charged against (assigned by the
  machine-specific filter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Any, Iterator, Optional


class AAUType(Enum):
    SEQ = auto()        # sequential construct / replicated scalar code
    ITER = auto()       # iterative construct (IterD / IterND)
    COND = auto()       # conditional construct (CondtD)
    COMM = auto()       # communication operation
    SYNC = auto()       # synchronisation operation (barrier)
    REDUCE = auto()     # global reduction (local part; the combine is a COMM child)
    CALL = auto()       # procedure call
    IO = auto()         # input/output operation

    def short(self) -> str:
        return {
            AAUType.SEQ: "Seq",
            AAUType.ITER: "IterD",
            AAUType.COND: "CondtD",
            AAUType.COMM: "Comm",
            AAUType.SYNC: "Sync",
            AAUType.REDUCE: "Reduce",
            AAUType.CALL: "Call",
            AAUType.IO: "IO",
        }[self]


@dataclass
class AAU:
    """One Application Abstraction Unit."""

    id: int
    type: AAUType
    name: str
    line: int = 0
    children: list["AAU"] = field(default_factory=list)
    spmd_node: Any = None                 # the SPMD node this AAU abstracts (if any)
    detail: dict[str, Any] = field(default_factory=dict)
    sau_name: str = "node"                # assigned by the machine-specific filter
    deterministic: bool = True            # IterD/CondtD vs IterND/CondtND

    def add(self, child: "AAU") -> "AAU":
        self.children.append(child)
        return child

    def walk(self) -> Iterator["AAU"]:
        """Pre-order traversal of this AAU and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, aau_id: int) -> Optional["AAU"]:
        for aau in self.walk():
            if aau.id == aau_id:
                return aau
        return None

    def count(self) -> int:
        return sum(1 for _ in self.walk())

    def leaves(self) -> list["AAU"]:
        return [aau for aau in self.walk() if not aau.children]

    def by_type(self, aau_type: AAUType) -> list["AAU"]:
        return [aau for aau in self.walk() if aau.type is aau_type]

    @property
    def type_name(self) -> str:
        return self.type.short()

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        det = "" if self.deterministic else " (non-deterministic)"
        lines = [f"{pad}[{self.id}] {self.type_name}{det} {self.name} (line {self.line})"]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)
