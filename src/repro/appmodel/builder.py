"""The abstraction parse: SPMD node program → AAG → SAAG (§4.2).

The builder walks the loosely-synchronous SPMD program emitted by Phase 1 and
produces, per construct, the AAU structure described in §4.3 / Figure 2:

* a forall becomes ``Seq`` (pack/adjust) → ``Comm`` (gather) → ``IterD``
  (containing ``CondtD`` when masked) → optional ``Comm`` (write back),
* reductions become ``Reduce`` followed by a ``Comm`` (the collective combine),
* cshift/tshift library calls become ``Comm`` AAUs,
* replicated scalar code becomes ``Seq`` AAUs, and serial control flow
  (``do``/``if``) becomes ``IterD``/``CondtD`` AAUs with children.

It also fills the communication table and superimposes the
communication/synchronisation edges to yield the SAAG.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compiler.comm_detect import comm_elements_per_proc
from ..compiler.pipeline import CompiledProgram
from ..compiler.spmd import (
    CommPhase,
    LocalLoopNest,
    NodeDo,
    NodeDoWhile,
    NodeIf,
    OwnerStmt,
    ReductionNode,
    SeqOverhead,
    SerialStmt,
    ShiftNode,
    SPMDNode,
)
from .aag import AAG
from .aau import AAU, AAUType
from .comm_table import CommunicationTable
from .critical_vars import resolve_critical_variables
from .saag import SAAG, SyncEdge


@dataclass
class _BuildState:
    next_id: int = 0

    def new_id(self) -> int:
        value = self.next_id
        self.next_id += 1
        return value


class AAGBuilder:
    """Builds the AAG (and, with :meth:`build_saag`, the SAAG) of a compiled program."""

    def __init__(self, compiled: CompiledProgram):
        self.compiled = compiled
        self.state = _BuildState()
        self.comm_table = CommunicationTable()
        self._pending_edges: list[SyncEdge] = []

    # ------------------------------------------------------------------
    # AAG construction
    # ------------------------------------------------------------------

    def build_aag(self) -> AAG:
        root = AAU(
            id=self.state.new_id(),
            type=AAUType.SEQ,
            name=f"program {self.compiled.name}",
            line=self.compiled.program.line,
        )
        self._build_children(self.compiled.spmd.nodes, root)
        return AAG(root=root, program_name=self.compiled.name)

    def _build_children(self, nodes: list[SPMDNode], parent: AAU) -> None:
        previous: AAU | None = None
        for node in nodes:
            aau = self._build_node(node)
            parent.add(aau)
            # Loosely-synchronous ordering edge between a computation AAU and
            # the communication AAU that follows (or precedes) it.
            if previous is not None and (
                previous.type in (AAUType.COMM, AAUType.SYNC)
                or aau.type in (AAUType.COMM, AAUType.SYNC)
            ):
                self._pending_edges.append(SyncEdge(
                    source_id=previous.id, target_id=aau.id, kind="comm",
                    array=str(aau.detail.get("array", "")),
                ))
            previous = aau

    def _build_node(self, node: SPMDNode) -> AAU:
        if isinstance(node, SeqOverhead):
            return AAU(
                id=self.state.new_id(), type=AAUType.SEQ, name=node.kind,
                line=node.line, spmd_node=node,
                detail={"kind": node.kind, "items": node.items},
            )

        if isinstance(node, CommPhase):
            aau = AAU(
                id=self.state.new_id(), type=AAUType.COMM,
                name=f"comm phase ({node.purpose})", line=node.line, spmd_node=node,
                detail={"purpose": node.purpose, "n_comms": len(node.comms)},
            )
            for spec in node.comms:
                elements = comm_elements_per_proc(spec, self.compiled.mapping)
                entry = self.comm_table.new_entry(
                    aau_id=aau.id,
                    kind=spec.kind,
                    array=spec.array,
                    axis=spec.axis,
                    offset=spec.offset,
                    reduce_op=spec.reduce_op,
                    element_size=spec.element_size,
                    elements_per_proc=elements,
                    bytes_per_proc=elements * spec.element_size,
                    line=spec.line or node.line,
                )
                aau.detail.setdefault("entries", []).append(entry.entry_id)
            return aau

        if isinstance(node, LocalLoopNest):
            aau = AAU(
                id=self.state.new_id(), type=AAUType.ITER,
                name=node.label or "local loop nest", line=node.line, spmd_node=node,
                detail={
                    "home_array": node.home_array,
                    "depth": node.depth,
                    "masked": node.mask is not None,
                },
            )
            if node.mask is not None:
                aau.add(AAU(
                    id=self.state.new_id(), type=AAUType.COND, name="forall mask",
                    line=node.line, spmd_node=node, detail={"mask": True},
                ))
            return aau

        if isinstance(node, ReductionNode):
            return AAU(
                id=self.state.new_id(), type=AAUType.REDUCE,
                name=node.label or f"global {node.op}", line=node.line, spmd_node=node,
                detail={"op": node.op, "target": node.target, "home_array": node.home_array},
            )

        if isinstance(node, ShiftNode):
            aau = AAU(
                id=self.state.new_id(), type=AAUType.COMM,
                name=node.label or f"cshift({node.source})", line=node.line, spmd_node=node,
                detail={"library": "cshift" if node.circular else "eoshift",
                        "array": node.source, "axis": node.axis},
            )
            dist = self.compiled.mapping.distribution_of(node.source)
            if dist is not None:
                boundary = 1.0
                for axis_no, axis in enumerate(dist.axes):
                    if axis_no != node.axis:
                        boundary *= max(axis.avg_local_count(), 1.0)
                entry = self.comm_table.new_entry(
                    aau_id=aau.id,
                    kind="shift",
                    array=node.source,
                    axis=node.axis,
                    offset=1,
                    element_size=dist.element_size,
                    elements_per_proc=boundary,
                    bytes_per_proc=boundary * dist.element_size,
                    line=node.line,
                )
                aau.detail.setdefault("entries", []).append(entry.entry_id)
            return aau

        if isinstance(node, (SerialStmt, OwnerStmt)):
            kind = "owner-computes statement" if isinstance(node, OwnerStmt) else "scalar statement"
            return AAU(
                id=self.state.new_id(), type=AAUType.SEQ,
                name=node.label or kind, line=node.line, spmd_node=node,
                detail={"kind": kind},
            )

        if isinstance(node, NodeDo):
            aau = AAU(
                id=self.state.new_id(), type=AAUType.ITER,
                name=node.label or f"do {node.var}", line=node.line, spmd_node=node,
                detail={"serial_loop": True, "var": node.var},
            )
            self._build_children(node.body, aau)
            return aau

        if isinstance(node, NodeDoWhile):
            aau = AAU(
                id=self.state.new_id(), type=AAUType.ITER,
                name=node.label or "do while", line=node.line, spmd_node=node,
                detail={"serial_loop": True, "while": True},
                deterministic=False,
            )
            self._build_children(node.body, aau)
            return aau

        if isinstance(node, NodeIf):
            aau = AAU(
                id=self.state.new_id(), type=AAUType.COND,
                name=node.label or "if construct", line=node.line, spmd_node=node,
                detail={"branches": len(node.branches), "has_else": bool(node.else_body)},
            )
            for branch_no, (_, body) in enumerate(node.branches):
                branch = AAU(
                    id=self.state.new_id(), type=AAUType.SEQ, name=f"branch {branch_no}",
                    line=node.line, detail={"branch": branch_no},
                )
                self._build_children(body, branch)
                aau.add(branch)
            if node.else_body:
                branch = AAU(
                    id=self.state.new_id(), type=AAUType.SEQ, name="else branch",
                    line=node.line, detail={"branch": "else"},
                )
                self._build_children(node.else_body, branch)
                aau.add(branch)
            return aau

        # Unknown node type: abstract it as a sequential unit so interpretation
        # never silently drops work.
        return AAU(
            id=self.state.new_id(), type=AAUType.SEQ,
            name=type(node).__name__, line=node.line, spmd_node=node,
        )

    # ------------------------------------------------------------------
    # SAAG construction
    # ------------------------------------------------------------------

    def build_saag(
        self,
        aag: AAG | None = None,
        overrides: dict[str, float] | None = None,
    ) -> SAAG:
        aag = aag or self.build_aag()
        critical = resolve_critical_variables(
            self.compiled.normalized,
            self.compiled.symtable,
            overrides=overrides,
            base_env=self.compiled.mapping.env,
        )
        saag = SAAG(
            aag=aag,
            edges=list(self._pending_edges),
            comm_table=self.comm_table,
            critical_variables=critical,
        )
        # Reduction AAUs synchronise with the comm AAU that follows them.
        aaus = list(aag.walk())
        for index, aau in enumerate(aaus):
            if aau.type is AAUType.REDUCE and index + 1 < len(aaus):
                nxt = aaus[index + 1]
                if nxt.type is AAUType.COMM:
                    saag.add_edge(SyncEdge(
                        source_id=aau.id, target_id=nxt.id, kind="reduce",
                        array=str(aau.detail.get("home_array") or ""),
                    ))
        return saag


def build_aag(compiled: CompiledProgram) -> AAG:
    """Convenience: build just the AAG of a compiled program."""
    return AAGBuilder(compiled).build_aag()


def build_saag(
    compiled: CompiledProgram, overrides: dict[str, float] | None = None
) -> SAAG:
    """Convenience: run the full abstraction parse (AAG + SAAG + comm table)."""
    builder = AAGBuilder(compiled)
    aag = builder.build_aag()
    return builder.build_saag(aag, overrides=overrides)
