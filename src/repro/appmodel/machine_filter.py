"""The machine-specific filter (§3.2, second abstraction step).

*"The second step consists of machine specific augmentation and is performed
by the machine specific filter.  This step incorporates machine specific
information (such as introduced compiler transformations/optimizations) into
the SAAG based on a mapping defined by the user."*

Concretely the filter:

* assigns every AAU the SAU it is charged against (node code → the ``node``
  SAU; communication → the ``cube`` SAU; I/O and program load → the ``host``
  SAU),
* annotates loop-nest AAUs with the machine-specific execution details the
  interpretation functions need (element size / precision of the home array,
  whether the compiler's loop-reordering produced stride-1 access), and
* records which Phase-1 optimisations were active so the interpretation parse
  can honour the user's on/off switches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compiler.pipeline import CompiledProgram
from ..compiler.spmd import CommPhase, LocalLoopNest, ReductionNode, ShiftNode
from ..system.ipsc860 import Machine
from .aau import AAUType
from .saag import SAAG


@dataclass
class FilterOptions:
    """User-defined mapping choices for the machine-specific filter."""

    charge_io_to_host: bool = True
    assume_stride1_innermost: bool = True   # set by the loop-reordering optimisation
    notes: dict[str, str] = field(default_factory=dict)


def apply_machine_filter(
    saag: SAAG,
    compiled: CompiledProgram,
    machine: Machine,
    options: FilterOptions | None = None,
) -> SAAG:
    """Augment *saag* in place with machine-specific information; returns it."""
    options = options or FilterOptions()
    opts = compiled.options.optimizations

    for aau in saag.walk():
        node = aau.spmd_node

        # --- SAU assignment ------------------------------------------------
        if aau.type in (AAUType.COMM, AAUType.SYNC):
            aau.sau_name = "cube"
        elif aau.type is AAUType.IO and options.charge_io_to_host and machine.host is not None:
            aau.sau_name = "host"
        else:
            aau.sau_name = "node"

        # --- machine-specific annotations -----------------------------------
        if isinstance(node, LocalLoopNest) and node.home_array:
            dist = compiled.mapping.distribution_of(node.home_array)
            if dist is not None:
                aau.detail["element_size"] = dist.element_size
                aau.detail["precision"] = _precision_of(compiled, node.home_array)
                aau.detail["local_elements_max"] = float(dist.max_local_size())
                aau.detail["local_elements_avg"] = float(dist.avg_local_size())
            aau.detail["stride1_innermost"] = bool(
                opts.loop_reordering and options.assume_stride1_innermost
            )
        elif isinstance(node, ReductionNode) and node.home_array:
            dist = compiled.mapping.distribution_of(node.home_array)
            if dist is not None:
                aau.detail["element_size"] = dist.element_size
                aau.detail["precision"] = _precision_of(compiled, node.home_array)
                aau.detail["local_elements_avg"] = float(dist.avg_local_size())
        elif isinstance(node, (CommPhase, ShiftNode)):
            aau.detail["network"] = "direct-connect hypercube"

        aau.detail["machine"] = machine.name
        aau.detail["optimizations"] = {
            "merge_comm_phases": opts.merge_comm_phases,
            "loop_reordering": opts.loop_reordering,
        }

    return saag


def _precision_of(compiled: CompiledProgram, array: str) -> str:
    sym = compiled.symtable.get(array)
    if sym is None:
        return "real"
    return "double" if sym.type_name == "double" else "real"
