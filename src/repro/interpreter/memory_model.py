"""Static memory-hierarchy model used by the interpretation functions.

§3.3: *"Models and heuristics are defined to handle accesses to the memory
hierarchy ..."*.  The interpreter cannot observe actual access streams, so it
estimates a cache hit ratio from

* the per-processor working set of the loop nest (local block sizes of every
  array it touches) relative to the data-cache capacity, and
* whether the innermost loop runs stride-1 through memory (the compiler's
  loop-reordering optimisation guarantees this when enabled).

The simulator's node model computes the analogous quantity from the *actual*
local shapes and reference strides, so the two disagree slightly on
cache behaviour — one of the realistic sources of prediction error.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..system.sau import MemoryComponent


@dataclass
class MemoryModelOptions:
    """Knobs for the static cache model (exposed for ablation studies)."""

    enabled: bool = True
    default_hit_ratio: float = 0.92       # used when the model is disabled
    in_cache_hit_ratio: float = 0.97      # working set fits in D-cache
    reuse_bonus: float = 0.5              # fraction of capacity misses avoided by reuse


def streaming_miss_ratio(element_size: int, memory: MemoryComponent, stride1: bool) -> float:
    """Miss ratio of a streaming pass over data that does not fit in cache."""
    if not stride1:
        return 1.0
    return min(1.0, element_size / float(memory.cache_line_bytes))


def estimate_hit_ratio(
    memory: MemoryComponent,
    working_set_bytes: float,
    element_size: int,
    *,
    stride1: bool = True,
    arrays_touched: int = 1,
    options: MemoryModelOptions | None = None,
) -> float:
    """Estimate the data-cache hit ratio of one loop nest.

    ``working_set_bytes`` is the total number of bytes of distributed-array
    data the loop touches per processor, ``arrays_touched`` how many distinct
    arrays participate (more arrays → more conflict misses in a small
    direct-mapped cache like the i860's).
    """
    options = options or MemoryModelOptions()
    if not options.enabled:
        return options.default_hit_ratio

    cache_bytes = memory.dcache_bytes
    if cache_bytes <= 0:
        return 0.0
    if working_set_bytes <= cache_bytes:
        # fits: only compulsory misses on the first pass, amortised away
        return options.in_cache_hit_ratio

    miss = streaming_miss_ratio(element_size, memory, stride1)
    # conflict misses grow mildly with the number of competing arrays
    conflict_factor = 1.0 + 0.08 * max(arrays_touched - 1, 0)
    miss = min(1.0, miss * conflict_factor)
    # partial reuse: the fraction of the working set that still fits gets hits
    resident_fraction = min(1.0, cache_bytes / working_set_bytes)
    miss = miss * (1.0 - options.reuse_bonus * resident_fraction)
    return max(0.0, 1.0 - miss)


def working_set_bytes(
    local_elements: float, arrays_touched: int, element_size: int
) -> float:
    """Approximate per-processor working set of a loop nest."""
    return max(local_elements, 0.0) * max(arrays_touched, 1) * element_size
