"""Interpretation Engine: per-AAU interpretation functions + the recursive
interpretation algorithm that predicts application performance from SAU
parameters (Phase 2 of the framework)."""

from .engine import InterpretationResult, PerformanceInterpreter, interpret
from .expression_cost import (
    OpCount,
    count_assignment,
    count_expr,
    count_statement_body,
    iteration_time,
)
from .functions import InterpretationContext, InterpreterOptions, interpret_leaf
from .memory_model import (
    MemoryModelOptions,
    estimate_hit_ratio,
    streaming_miss_ratio,
    working_set_bytes,
)
from .metrics import AAUMetrics, Metrics, MetricsTable
from .overlap import OverlapOptions, apply_overlap

__all__ = [
    "InterpretationResult",
    "PerformanceInterpreter",
    "interpret",
    "OpCount",
    "count_assignment",
    "count_expr",
    "count_statement_body",
    "iteration_time",
    "InterpretationContext",
    "InterpreterOptions",
    "interpret_leaf",
    "MemoryModelOptions",
    "estimate_hit_ratio",
    "streaming_miss_ratio",
    "working_set_bytes",
    "AAUMetrics",
    "Metrics",
    "MetricsTable",
    "OverlapOptions",
    "apply_overlap",
]
