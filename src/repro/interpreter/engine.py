"""The interpretation algorithm (§3.3, §4.2 — the interpretation parse).

The engine recursively applies the interpretation functions to the SAAG:
leaf AAUs are charged via their interpretation function, serial loops multiply
their body by the (critical-variable-resolved) trip count, conditionals select
or weight their branches, and a global clock plus cumulative computation /
communication / overhead metrics are maintained for the whole SAAG.

The result object supports the queries the output module exposes: cumulative
metrics, per-AAU metrics, sub-AAG metrics and per-source-line metrics.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, field

from ..appmodel.aau import AAU, AAUType
from ..appmodel.builder import build_saag
from ..appmodel.machine_filter import FilterOptions, apply_machine_filter
from ..appmodel.saag import SAAG
from ..compiler.pipeline import CompiledProgram
from ..compiler.spmd import LocalLoopNest, NodeDo, NodeDoWhile, NodeIf
from ..system.ipsc860 import Machine
from .functions import InterpretationContext, InterpreterOptions, interpret_leaf
from .metrics import Metrics, MetricsTable
from .overlap import apply_overlap


@dataclass
class InterpretationResult:
    """Everything the interpretation parse produces for one (program, machine) pair."""

    compiled: CompiledProgram
    machine: Machine
    saag: SAAG
    table: MetricsTable
    options: InterpreterOptions
    wall_clock_seconds: float = 0.0    # how long the interpretation itself took

    # -- headline numbers ------------------------------------------------------

    @property
    def total(self) -> Metrics:
        return self.table.cumulative

    @property
    def predicted_time_us(self) -> float:
        return self.table.cumulative.total

    @property
    def predicted_time_s(self) -> float:
        return self.predicted_time_us * 1e-6

    @property
    def load_imbalance(self) -> float:
        """Static critical-path/mean-rank computation ratio (1.0 = balanced).

        The interpretation-parse counterpart of the simulator's per-rank
        ``load_imbalance``: block partitions whose extents do not divide by
        the processor count, and owner-computes scalar statements, push it
        above 1.0.  The performance advisor (:mod:`repro.advisor`) turns
        values above its threshold into load-imbalance findings.
        """
        return self.table.cumulative.imbalance

    # -- queries -----------------------------------------------------------------

    def metrics_for(self, aau_id: int) -> Metrics:
        return self.table.total_for(aau_id)

    def subtree_metrics(self, aau: AAU) -> Metrics:
        return self.table.subtree_total(aau)

    def per_line(self, line: int) -> Metrics:
        """Cumulative metrics attributed to one physical source line."""
        total = Metrics()
        for aau in self.saag.at_line(line):
            total += self.table.total_for(aau.id)
        return total

    def line_breakdown(self) -> dict[int, Metrics]:
        """Metrics per source line, for the whole program."""
        lines: dict[int, Metrics] = {}
        for aau in self.saag.walk():
            metrics = self.table.total_for(aau.id)
            if metrics.total <= 0.0:
                continue
            existing = lines.setdefault(aau.line, Metrics())
            existing += metrics
        return lines

    def breakdown_by_type(self) -> dict[str, Metrics]:
        out: dict[str, Metrics] = {}
        for aau in self.saag.walk():
            metrics = self.table.total_for(aau.id)
            if metrics.total <= 0.0:
                continue
            existing = out.setdefault(aau.type_name, Metrics())
            existing += metrics
        return out

    def top_aaus(self, n: int = 10) -> list[tuple[AAU, Metrics]]:
        scored = [
            (aau, self.table.total_for(aau.id))
            for aau in self.saag.walk()
        ]
        scored.sort(key=lambda pair: pair[1].total, reverse=True)
        return scored[:n]


class PerformanceInterpreter:
    """Runs the interpretation algorithm over one compiled program."""

    def __init__(
        self,
        compiled: CompiledProgram,
        machine: Machine,
        options: InterpreterOptions | None = None,
        saag: SAAG | None = None,
        filter_options: FilterOptions | None = None,
    ):
        self.compiled = compiled
        self.machine = machine
        self.options = options or InterpreterOptions()
        if saag is None:
            saag = build_saag(compiled, overrides=self.options.overrides)
            apply_machine_filter(saag, compiled, machine, filter_options)
        self.saag = saag
        env = dict(compiled.mapping.env)
        env.update(self.saag.critical_variables.resolved_env())
        env.update({k.lower(): float(v) for k, v in self.options.overrides.items()})
        self.ctx = InterpretationContext(
            compiled=compiled, machine=machine, saag=self.saag,
            options=self.options, env=env,
        )
        self.table = MetricsTable()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def interpret(self) -> InterpretationResult:
        started = _time.perf_counter()
        total = self._interpret_sequence(list(self.saag.root.children), multiplier=1.0)
        startup = self.options.program_startup_us
        if startup < 0:
            from ..system.ipsc860 import PROGRAM_STARTUP_US
            startup = PROGRAM_STARTUP_US
        startup_metrics = Metrics(overhead=startup)
        total = total + startup_metrics
        self.table.record(self.saag.root.id, startup_metrics, 1.0)
        self.table.cumulative = total
        self.table.global_clock = total.total
        elapsed = _time.perf_counter() - started
        return InterpretationResult(
            compiled=self.compiled,
            machine=self.machine,
            saag=self.saag,
            table=self.table,
            options=self.options,
            wall_clock_seconds=elapsed,
        )

    # ------------------------------------------------------------------
    # recursion
    # ------------------------------------------------------------------

    def _interpret_sequence(self, aaus: list[AAU], multiplier: float) -> Metrics:
        total = Metrics()
        previous_computation = 0.0
        for aau in aaus:
            metrics = self._interpret_aau(aau, multiplier)
            if aau.type in (AAUType.COMM, AAUType.SYNC) and self.options.overlap.enabled:
                adjusted = apply_overlap(metrics, previous_computation, self.options.overlap)
                saved = metrics.communication - adjusted.communication
                if saved > 0:
                    entry = self.table.get(aau.id)
                    if entry is not None:
                        entry.per_execution.communication = max(
                            entry.per_execution.communication - saved, 0.0
                        )
                    metrics = adjusted
            total += metrics
            previous_computation = metrics.computation
        return total

    def _interpret_aau(self, aau: AAU, multiplier: float) -> Metrics:
        node = aau.spmd_node
        clock = self.table.global_clock

        if isinstance(node, NodeDo):
            return self._interpret_do(aau, node, multiplier)
        if isinstance(node, NodeDoWhile):
            return self._interpret_do_while(aau, node, multiplier)
        if isinstance(node, NodeIf):
            return self._interpret_if(aau, node, multiplier)
        if node is None and aau.children:
            # structural grouping AAU (e.g. an IF branch)
            self.table.record(aau.id, Metrics(), multiplier, clock)
            return self._interpret_sequence(aau.children, multiplier)

        own = interpret_leaf(aau, self.ctx)
        self.table.record(aau.id, own, multiplier, clock)
        # LocalLoopNest children (the mask CondtD) are bookkeeping only.
        if not isinstance(node, LocalLoopNest):
            child_total = self._interpret_sequence(aau.children, multiplier) if aau.children \
                else Metrics()
        else:
            child_total = Metrics()
            for child in aau.children:
                self.table.record(child.id, Metrics(), multiplier, clock)
        return own + child_total

    # -- serial DO loop -----------------------------------------------------------

    def _interpret_do(self, aau: AAU, node: NodeDo, multiplier: float) -> Metrics:
        ctx = self.ctx
        proc = self.machine.processing
        start = ctx.eval(node.start, 1.0)
        end = ctx.eval(node.end, start)
        step = ctx.eval(node.step, 1.0) or 1.0
        trips = max(math.floor((end - start) / step) + 1, 0)

        own = Metrics(overhead=proc.loop_startup_overhead
                      + trips * (proc.loop_iteration_overhead + proc.int_op_time))
        self.table.record(aau.id, own, multiplier, self.table.global_clock)

        # Children see a representative (mid-range) value of the loop variable so
        # bounds that depend on it (triangular loops) interpret to their average.
        var = node.var.lower()
        saved = ctx.env.get(var)
        ctx.env[var] = (start + end) / 2.0
        child_total = self._interpret_sequence(aau.children, multiplier * trips)
        if saved is None:
            ctx.env.pop(var, None)
        else:
            ctx.env[var] = saved

        # child_total is the metrics of ONE execution of the loop body sequence;
        # one execution of the loop runs the body `trips` times.
        return own + child_total.scaled(trips)

    # -- DO WHILE -------------------------------------------------------------------

    def _interpret_do_while(self, aau: AAU, node: NodeDoWhile, multiplier: float) -> Metrics:
        proc = self.machine.processing
        trips = node.estimated_trips or self.options.while_trip_estimate
        cond_cost = Metrics(overhead=trips * (proc.branch_time + 2 * proc.int_op_time))
        self.table.record(aau.id, cond_cost, multiplier, self.table.global_clock)
        child_total = self._interpret_sequence(aau.children, multiplier * trips)
        return cond_cost + child_total.scaled(trips)

    # -- IF construct ----------------------------------------------------------------

    def _interpret_if(self, aau: AAU, node: NodeIf, multiplier: float) -> Metrics:
        ctx = self.ctx
        proc = self.machine.processing
        own = Metrics(overhead=len(node.branches) * proc.conditional_overhead)
        self.table.record(aau.id, own, multiplier, self.table.global_clock)

        # Try to resolve the branch statically (deterministic conditional).
        chosen: int | None = None
        for index, (cond, _) in enumerate(node.branches):
            value = ctx.eval(cond, None)
            if value is None:
                chosen = None
                break
            if value:
                chosen = index
                break
        else:
            chosen = len(node.branches)  # else branch (or nothing)

        branch_aaus = aau.children
        total = own
        if chosen is not None:
            for index, branch in enumerate(branch_aaus):
                weight = 1.0 if index == chosen else 0.0
                child = self._interpret_sequence([branch], multiplier * max(weight, 1e-12))
                total += child.scaled(weight)
        else:
            weight = self.options.branch_probability
            weights = [weight] * len(branch_aaus)
            if weights:
                weights[0] = max(weight, 1.0 - weight * (len(branch_aaus) - 1))
            for branch, w in zip(branch_aaus, weights):
                child = self._interpret_sequence([branch], multiplier * w)
                total += child.scaled(w)
        return total


def interpret(
    compiled: CompiledProgram,
    machine: Machine,
    options: InterpreterOptions | None = None,
    saag: SAAG | None = None,
) -> InterpretationResult:
    """Convenience wrapper: run the full interpretation parse."""
    return PerformanceInterpreter(compiled, machine, options=options, saag=saag).interpret()
