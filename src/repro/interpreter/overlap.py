"""Computation/communication overlap model.

§3.3 lists overlap between computation and communication among the modelled
effects.  On the iPSC/860 the Direct-Connect hardware can progress a message
while the node computes, but the generated loosely-synchronous code only
overlaps the *posting* of receives with the tail of the preceding computation
phase.  We model this as a fraction of the communication phase that can hide
under the computation phase adjacent to it.
"""

from __future__ import annotations

from dataclasses import dataclass

from .metrics import Metrics


@dataclass
class OverlapOptions:
    """User-visible overlap model knobs."""

    enabled: bool = False
    fraction: float = 0.25        # fraction of comm that may hide under adjacent comp
    max_hidden_us: float = 5000.0 # hardware can only buffer so much


def apply_overlap(
    comm_metrics: Metrics,
    adjacent_computation_us: float,
    options: OverlapOptions,
) -> Metrics:
    """Reduce the communication time of a phase by the amount hidden under
    the adjacent computation phase."""
    if not options.enabled or comm_metrics.communication <= 0.0:
        return comm_metrics
    hideable = min(
        comm_metrics.communication * options.fraction,
        adjacent_computation_us,
        options.max_hidden_us,
    )
    adjusted = comm_metrics.copy()
    adjusted.communication = max(comm_metrics.communication - hideable, 0.0)
    return adjusted
