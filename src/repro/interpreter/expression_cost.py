"""Static operation counting for Fortran expressions and assignments.

The interpretation function of a computational AAU needs the per-iteration
cost of its body.  This module counts, from the AST alone:

* floating-point adds/multiplies, divides and exponentiations,
* elemental intrinsic calls (weighted by the catalogue's per-call flop count),
* integer/index operations (subscript arithmetic),
* memory references (array element loads/stores) and distinct arrays touched,
* comparisons, logical operations and mask evaluations.

The resulting :class:`OpCount` is turned into time by ``iteration_time`` using
the Processing and Memory components of the node SAU.  The same counter is
used by the simulator's node cost model so both timing paths agree on the
*static* work per iteration and differ only in dynamic effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..frontend import ast_nodes as ast
from ..frontend.intrinsics import IntrinsicClass, intrinsic_class, intrinsic_info, is_intrinsic
from ..system.sau import MemoryComponent, ProcessingComponent


@dataclass
class OpCount:
    """Operation counts for one evaluation of an expression / statement."""

    flops: float = 0.0            # adds + multiplies (+ intrinsic-weighted work)
    divides: float = 0.0
    int_ops: float = 0.0          # subscript and loop-index arithmetic
    mem_reads: float = 0.0        # array element loads
    mem_writes: float = 0.0       # array element stores
    scalar_refs: float = 0.0
    compares: float = 0.0
    logicals: float = 0.0
    calls: float = 0.0
    arrays_touched: set[str] = field(default_factory=set)

    def __add__(self, other: "OpCount") -> "OpCount":
        return OpCount(
            flops=self.flops + other.flops,
            divides=self.divides + other.divides,
            int_ops=self.int_ops + other.int_ops,
            mem_reads=self.mem_reads + other.mem_reads,
            mem_writes=self.mem_writes + other.mem_writes,
            scalar_refs=self.scalar_refs + other.scalar_refs,
            compares=self.compares + other.compares,
            logicals=self.logicals + other.logicals,
            calls=self.calls + other.calls,
            arrays_touched=self.arrays_touched | other.arrays_touched,
        )

    @property
    def memory_accesses(self) -> float:
        return self.mem_reads + self.mem_writes

    def as_dict(self) -> dict[str, float]:
        return {
            "flops": self.flops,
            "divides": self.divides,
            "int_ops": self.int_ops,
            "mem_reads": self.mem_reads,
            "mem_writes": self.mem_writes,
            "scalar_refs": self.scalar_refs,
            "compares": self.compares,
            "logicals": self.logicals,
            "calls": self.calls,
        }


def count_expr(expr: ast.Expr | None) -> OpCount:
    """Count the operations needed to evaluate *expr* once."""
    count = OpCount()
    if expr is None:
        return count
    _count_into(expr, count)
    return count


def _count_into(expr: ast.Expr, count: OpCount) -> None:
    if isinstance(expr, (ast.Num, ast.Str, ast.LogicalLit)):
        return
    if isinstance(expr, ast.Var):
        count.scalar_refs += 1
        return
    if isinstance(expr, ast.Section):
        for part in (expr.lo, expr.hi, expr.stride):
            if part is not None:
                _count_into(part, count)
        return
    if isinstance(expr, ast.ArrayRef):
        count.mem_reads += 1
        count.arrays_touched.add(expr.name.lower())
        for index in expr.indices:
            # each subscript costs index arithmetic (scale + offset)
            count.int_ops += 1.5
            _count_into(index, count)
        return
    if isinstance(expr, ast.FuncCall):
        name = expr.name.lower()
        for arg in expr.args:
            _count_into(arg, count)
        if is_intrinsic(name):
            info = intrinsic_info(name)
            cls = intrinsic_class(name)
            if cls in (IntrinsicClass.ELEMENTAL, IntrinsicClass.CONVERSION):
                count.flops += info.flops
                count.calls += 0.0 if info.flops <= 2 else 1.0
            else:
                # non-elemental intrinsic appearing inline (rare after
                # normalisation): charge a call plus per-element flop weight
                count.calls += 1.0
                count.flops += info.flops
        else:
            count.calls += 1.0
        return
    if isinstance(expr, ast.UnaryOp):
        if expr.op in ("-", "+"):
            count.flops += 0.5
        else:
            count.logicals += 1.0
        _count_into(expr.operand, count)
        return
    if isinstance(expr, ast.BinOp):
        if expr.op in ("+", "-", "*"):
            count.flops += 1.0
        elif expr.op == "/":
            count.divides += 1.0
        elif expr.op == "**":
            count.flops += _power_cost(expr.right)
        _count_into(expr.left, count)
        _count_into(expr.right, count)
        return
    if isinstance(expr, ast.Compare):
        count.compares += 1.0
        _count_into(expr.left, count)
        _count_into(expr.right, count)
        return
    if isinstance(expr, ast.Logical):
        count.logicals += 1.0
        _count_into(expr.left, count)
        _count_into(expr.right, count)
        return


def _power_cost(exponent: ast.Expr) -> float:
    """x**k costs ~log2(k) multiplies for small integer k, else a full pow()."""
    if isinstance(exponent, ast.Num) and exponent.is_int:
        k = abs(int(exponent.value))
        if k <= 1:
            return 1.0
        return float(max(1, k.bit_length()))
    return 25.0  # general pow via exp/log


def count_assignment(stmt: ast.Assignment) -> OpCount:
    """Count one execution of an assignment (RHS evaluation + LHS store)."""
    count = count_expr(stmt.value)
    target = stmt.target
    if isinstance(target, ast.ArrayRef):
        count.mem_writes += 1
        count.arrays_touched.add(target.name.lower())
        for index in target.indices:
            count.int_ops += 1.5
            count += count_expr(index) if not isinstance(index, ast.Var) else OpCount(scalar_refs=1)
    else:
        count.scalar_refs += 1
    return count


def count_statement_body(body: list[ast.Assignment], mask: ast.Expr | None = None) -> OpCount:
    """Count one iteration of a forall/loop body (all assignments + mask evaluation)."""
    total = OpCount()
    for stmt in body:
        total += count_assignment(stmt)
    if mask is not None:
        total += count_expr(mask)
    return total


def iteration_time(
    count: OpCount,
    proc: ProcessingComponent,
    memory: MemoryComponent,
    *,
    precision: str = "real",
    hit_ratio: float = 0.9,
    include_loop_overhead: bool = True,
) -> float:
    """Convert an :class:`OpCount` into microseconds for one iteration."""
    flop_time = proc.flop_time(precision)
    time = (
        count.flops * flop_time
        + count.divides * proc.divide_time
        + count.int_ops * proc.int_op_time
        + count.compares * proc.branch_time
        + count.logicals * proc.int_op_time
        + count.calls * proc.call_overhead
        + count.scalar_refs * memory.hit_time
        + count.memory_accesses * memory.access_time(hit_ratio)
        + count.mem_writes * memory.write_through_penalty
        + proc.assignment_overhead
    )
    if include_loop_overhead:
        time += proc.loop_iteration_overhead
    return time
