"""Performance metrics maintained by the interpretation parse.

§4.2: *"Performance metrics maintained at each AAU are its computation,
communication and overheads times, and the value of the global clock.  In
addition, cumulative metrics are also maintained for the entire SAAG."*

All times are in microseconds.  ``Metrics`` supports addition and scaling so
the interpretation algorithm can combine children and multiply by loop trip
counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Metrics:
    """Computation / communication / overhead breakdown (µs).

    ``computation`` is the *critical-path* (slowest-rank) computation time the
    loosely-synchronous model charges; ``balanced_computation`` is the
    mean-rank computation time the same work would cost if it were spread
    perfectly evenly.  The ratio of the two (:attr:`imbalance`) is the static
    load-imbalance estimate the performance advisor diagnoses from — the
    interpretation-parse analogue of the simulator's
    ``SimulationResult.load_imbalance``.  A value of ``0.0`` means "not
    tracked" and is read as perfectly balanced; the field is excluded from
    equality so existing golden comparisons are unaffected.
    """

    computation: float = 0.0
    communication: float = 0.0
    overhead: float = 0.0
    balanced_computation: float = field(default=0.0, compare=False)

    @property
    def total(self) -> float:
        return self.computation + self.communication + self.overhead

    @property
    def balanced(self) -> float:
        """Mean-rank computation time (falls back to the critical path)."""
        return self.balanced_computation if self.balanced_computation > 0.0 \
            else self.computation

    @property
    def imbalance(self) -> float:
        """Critical-path / mean-rank computation (1.0 = perfectly balanced)."""
        balanced = self.balanced
        return self.computation / balanced if balanced > 0.0 else 1.0

    def __add__(self, other: "Metrics") -> "Metrics":
        return Metrics(
            computation=self.computation + other.computation,
            communication=self.communication + other.communication,
            overhead=self.overhead + other.overhead,
            balanced_computation=self.balanced + other.balanced,
        )

    def __iadd__(self, other: "Metrics") -> "Metrics":
        self.balanced_computation = self.balanced + other.balanced
        self.computation += other.computation
        self.communication += other.communication
        self.overhead += other.overhead
        return self

    def scaled(self, factor: float) -> "Metrics":
        return Metrics(
            computation=self.computation * factor,
            communication=self.communication * factor,
            overhead=self.overhead * factor,
            balanced_computation=self.balanced_computation * factor,
        )

    def copy(self) -> "Metrics":
        return Metrics(self.computation, self.communication, self.overhead,
                       balanced_computation=self.balanced_computation)

    def as_dict(self) -> dict[str, float]:
        return {
            "computation": self.computation,
            "communication": self.communication,
            "overhead": self.overhead,
            "total": self.total,
            "imbalance": self.imbalance,
        }

    def describe(self, unit: str = "us") -> str:
        scale = {"us": 1.0, "ms": 1e-3, "s": 1e-6}[unit]
        return (
            f"comp {self.computation * scale:.3f}{unit}, "
            f"comm {self.communication * scale:.3f}{unit}, "
            f"ovhd {self.overhead * scale:.3f}{unit}, "
            f"total {self.total * scale:.3f}{unit}"
        )


@dataclass
class AAUMetrics:
    """Metrics associated with one AAU during interpretation."""

    aau_id: int
    per_execution: Metrics = field(default_factory=Metrics)
    executions: float = 0.0
    clock_at_entry: float = 0.0   # value of the global clock when first interpreted

    @property
    def total(self) -> Metrics:
        return self.per_execution.scaled(self.executions)

    def describe(self) -> str:
        return (
            f"AAU {self.aau_id}: executed {self.executions:g}x, "
            f"per execution {self.per_execution.describe()}"
        )


@dataclass
class MetricsTable:
    """Per-AAU metrics plus SAAG-level cumulative metrics."""

    per_aau: dict[int, AAUMetrics] = field(default_factory=dict)
    cumulative: Metrics = field(default_factory=Metrics)
    global_clock: float = 0.0

    def record(self, aau_id: int, per_execution: Metrics, executions: float,
               clock_at_entry: float = 0.0) -> AAUMetrics:
        entry = self.per_aau.get(aau_id)
        if entry is None:
            entry = AAUMetrics(aau_id=aau_id, per_execution=per_execution.copy(),
                               executions=executions, clock_at_entry=clock_at_entry)
            self.per_aau[aau_id] = entry
        else:
            # The same AAU interpreted again (e.g. on another loop level): merge.
            total_prev = entry.per_execution.scaled(entry.executions)
            total_new = per_execution.scaled(executions)
            entry.executions += executions
            if entry.executions > 0:
                merged = total_prev + total_new
                entry.per_execution = merged.scaled(1.0 / entry.executions)
        return entry

    def get(self, aau_id: int) -> AAUMetrics | None:
        return self.per_aau.get(aau_id)

    def total_for(self, aau_id: int) -> Metrics:
        entry = self.per_aau.get(aau_id)
        return entry.total if entry is not None else Metrics()

    def subtree_total(self, aau) -> Metrics:
        """Cumulative metrics for a branch of the AAG (sub-AAG query of §3.4)."""
        result = Metrics()
        for node in aau.walk():
            result += self.total_for(node.id)
        return result
