"""Interpretation functions: one per AAU type (§3.3).

*"An interpretation function is defined for each AAU type to compute its
performance in terms of parameters exported by the associated SAU."*

Every function takes the AAU and the shared :class:`InterpretationContext`
and returns the :class:`~repro.interpreter.metrics.Metrics` of **one
execution** of that AAU; the interpretation algorithm (in
:mod:`repro.interpreter.engine`) handles loop trip counts, branches and
accumulation into the SAAG-level cumulative metrics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from ..appmodel.aau import AAU
from ..appmodel.saag import SAAG
from ..compiler.comm_detect import comm_elements_per_proc
from ..compiler.pipeline import CompiledProgram
from ..compiler.spmd import (
    CommPhase,
    CommSpec,
    LocalLoopNest,
    OwnerStmt,
    ReductionNode,
    SeqOverhead,
    SerialStmt,
    ShiftNode,
)
from ..frontend import ast_nodes as ast
from ..frontend.symbols import try_eval_const
from ..system import comm_models, intrinsic_costs
from ..system.ipsc860 import Machine
from .expression_cost import OpCount, count_expr, count_statement_body, iteration_time
from .memory_model import MemoryModelOptions, estimate_hit_ratio, working_set_bytes
from .metrics import Metrics
from .overlap import OverlapOptions


@dataclass
class InterpreterOptions:
    """All user-controllable Phase-2 interpretation parameters."""

    overrides: dict[str, float] = field(default_factory=dict)   # critical variables
    mask_true_fraction: float = 1.0       # static assumption for masked foralls
    branch_probability: float = 0.5       # for non-resolvable conditionals
    while_trip_estimate: float = 10.0     # for DO WHILE loops
    memory: MemoryModelOptions = field(default_factory=MemoryModelOptions)
    overlap: OverlapOptions = field(default_factory=OverlapOptions)
    charge_print_statements: bool = True
    program_startup_us: float = -1.0      # <0 means "use the machine default"


@dataclass
class InterpretationContext:
    """Shared state threaded through the interpretation functions."""

    compiled: CompiledProgram
    machine: Machine
    saag: SAAG
    options: InterpreterOptions
    env: dict[str, float]

    @property
    def nprocs(self) -> int:
        return self.compiled.nprocs

    def topology(self, nprocs: int | None = None):
        """The machine's interconnect topology over *nprocs* nodes."""
        return self.machine.topology(max(nprocs or self.nprocs, 1))

    def eval(self, expr: ast.Expr | None, default: float | None = None) -> float | None:
        if expr is None:
            return default
        value = try_eval_const(expr, self.env)
        return value if value is not None else default


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _trip_count(ctx: InterpretationContext, lo: ast.Expr, hi: ast.Expr,
                step: ast.Expr | None) -> float:
    lo_v = ctx.eval(lo, 1.0)
    hi_v = ctx.eval(hi, lo_v)
    step_v = ctx.eval(step, 1.0) or 1.0
    if step_v == 0:
        step_v = 1.0
    trips = math.floor((hi_v - lo_v) / step_v) + 1
    return max(float(trips), 0.0)


def _precision(aau: AAU) -> str:
    return str(aau.detail.get("precision", "real"))


def _element_size(aau: AAU, default: int = 4) -> int:
    return int(aau.detail.get("element_size", default))


# ---------------------------------------------------------------------------
# interpretation functions
# ---------------------------------------------------------------------------


def interpret_seq_overhead(aau: AAU, ctx: InterpretationContext) -> Metrics:
    """Seq AAU: parameter packing / bounds adjustment around communication."""
    node: SeqOverhead = aau.spmd_node
    proc = ctx.machine.processing
    items = max(node.items, 1)
    if node.kind == "pack_parameters":
        time = items * (12 * proc.int_op_time + 2 * proc.assignment_overhead)
    elif node.kind == "adjust_bounds":
        time = items * (8 * proc.int_op_time + proc.divide_time)
    else:  # index translation
        time = items * (6 * proc.int_op_time)
    return Metrics(overhead=time)


def interpret_serial_stmt(aau: AAU, ctx: InterpretationContext) -> Metrics:
    """Seq AAU: replicated scalar statement executed identically on every node."""
    node = aau.spmd_node
    stmt = node.stmt if isinstance(node, (SerialStmt, OwnerStmt)) else None
    proc = ctx.machine.processing
    memory = ctx.machine.memory

    if stmt is None:
        return Metrics(overhead=proc.assignment_overhead)

    if isinstance(stmt, ast.Assignment):
        count = count_statement_body([stmt])
        time = iteration_time(count, proc, memory, hit_ratio=0.95,
                              include_loop_overhead=False)
        return Metrics(computation=time)
    if isinstance(stmt, ast.PrintStmt):
        if not ctx.options.charge_print_statements:
            return Metrics()
        items = max(len(stmt.items), 1)
        return Metrics(overhead=items * 55.0 + 180.0)   # formatted output to the host
    if isinstance(stmt, ast.CallStmt):
        count = OpCount(calls=1.0)
        for arg in stmt.args:
            count += count_expr(arg)
        time = iteration_time(count, proc, memory, hit_ratio=0.95,
                              include_loop_overhead=False)
        return Metrics(computation=time)
    # stop / exit / cycle / continue
    return Metrics(overhead=proc.branch_time)


def interpret_owner_stmt(aau: AAU, ctx: InterpretationContext) -> Metrics:
    """Seq AAU for a single element assignment executed only by the owner.

    In the loosely-synchronous model the other processors reach the next
    communication point and wait, so the element's cost appears on the critical
    path exactly once (plus the ownership test every node performs).
    """
    node: OwnerStmt = aau.spmd_node
    proc = ctx.machine.processing
    memory = ctx.machine.memory
    count = count_statement_body([node.stmt])
    compute = iteration_time(count, proc, memory, hit_ratio=0.95,
                             include_loop_overhead=False)
    guard = 4 * proc.int_op_time + proc.branch_time
    # only the owner computes while the other ranks idle at the guard, so the
    # mean-rank computation is 1/p of the critical-path charge
    metrics = Metrics(computation=compute, overhead=guard,
                      balanced_computation=compute / max(ctx.nprocs, 1))
    for spec in node.comms:
        metrics += _comm_spec_metrics(spec, ctx)
    return metrics


def _comm_spec_metrics(spec: CommSpec, ctx: InterpretationContext) -> Metrics:
    """Cost of one communication specification, charged to the cube SAU."""
    comm = ctx.machine.communication
    proc = ctx.machine.processing
    nprocs = ctx.nprocs
    dist = ctx.compiled.mapping.distribution_of(spec.array) if spec.array else None

    elements = comm_elements_per_proc(spec, ctx.compiled.mapping)
    nbytes = int(elements * spec.element_size)

    if spec.kind == "shift":
        procs_along = 1
        if dist is not None and spec.axis is not None and spec.axis < len(dist.axes):
            procs_along = dist.axes[spec.axis].nprocs
        if procs_along <= 1:
            # purely local boundary copy
            copy = elements * (ctx.machine.memory.hit_time + proc.assignment_overhead)
            return Metrics(overhead=copy)
        time = comm_models.shift_exchange_time(comm, nbytes)
        pack = elements * 2 * proc.int_op_time
        return Metrics(communication=time, overhead=pack)

    if spec.kind == "broadcast":
        procs = nprocs
        if dist is not None and spec.axis is not None and spec.axis < len(dist.axes):
            procs = max(dist.axes[spec.axis].nprocs, 1)
        time = comm_models.broadcast_time(comm, max(nbytes, spec.element_size), procs,
                                          topology=ctx.topology(procs))
        return Metrics(communication=time)

    if spec.kind == "reduce":
        time = comm_models.allreduce_time(
            comm, spec.element_size, nprocs,
            combine_time_per_stage=proc.flop_time_sp,
            topology=ctx.topology(),
        )
        return Metrics(communication=time)

    if spec.kind in ("gather", "writeback"):
        procs = dist.nprocs if dist is not None else nprocs
        time = comm_models.unstructured_gather_time(comm, nbytes, max(procs, 1),
                                                    topology=ctx.topology(max(procs, 1)))
        pack = elements * 3 * proc.int_op_time
        return Metrics(communication=time, overhead=pack)

    # unknown pattern: charge a barrier as a safe over-approximation
    return Metrics(communication=comm_models.barrier_time(comm, nprocs,
                                                          topology=ctx.topology()))


def interpret_comm_phase(aau: AAU, ctx: InterpretationContext) -> Metrics:
    """Comm AAU: one global communication phase (one or more collectives)."""
    node: CommPhase = aau.spmd_node
    metrics = Metrics()
    for spec in node.comms:
        spec_metrics = _comm_spec_metrics(spec, ctx)
        metrics += spec_metrics
        # update the communication table entries attached to this AAU
        for entry in ctx.saag.comm_table.for_aau(aau.id):
            if entry.kind == spec.kind and entry.array == spec.array and \
                    entry.axis == spec.axis and entry.offset == spec.offset:
                entry.estimated_time = spec_metrics.total
                entry.status = "interpreted"
    return metrics


def interpret_shift(aau: AAU, ctx: InterpretationContext) -> Metrics:
    """Comm AAU produced by a cshift/tshift/eoshift library call."""
    node: ShiftNode = aau.spmd_node
    dist = ctx.compiled.mapping.distribution_of(node.source)
    proc = ctx.machine.processing
    comm = ctx.machine.communication
    if dist is None:
        return Metrics(overhead=proc.call_overhead)

    local_elements = dist.avg_local_size()
    boundary = 1.0
    procs_along = 1
    offset = abs(ctx.eval(node.offset_expr, 1.0) or 1.0)
    for axis_no, axis in enumerate(dist.axes):
        if axis_no == node.axis:
            procs_along = axis.nprocs
            boundary *= min(offset, axis.avg_local_count()) or 1.0
        else:
            boundary *= max(axis.avg_local_count(), 1.0)

    precision = _precision(aau)
    total = intrinsic_costs.cshift_cost(
        proc, comm, local_elements, boundary, dist.element_size, procs_along, precision
    )
    copy_part = local_elements * (proc.assignment_overhead + proc.flop_time(precision))
    comm_part = max(total - copy_part, 0.0) if procs_along > 1 else 0.0
    metrics = Metrics(computation=min(copy_part, total), communication=comm_part)

    for entry in ctx.saag.comm_table.for_aau(aau.id):
        entry.estimated_time = metrics.communication
        entry.status = "interpreted"
    return metrics


def interpret_reduction(aau: AAU, ctx: InterpretationContext) -> Metrics:
    """Reduce AAU: the local partial reduction (the combine is the next Comm AAU)."""
    node: ReductionNode = aau.spmd_node
    proc = ctx.machine.processing
    memory = ctx.machine.memory

    local_elements = _reduction_local_elements(node, ctx)
    count = count_expr(node.source)
    if node.second_source is not None:
        count += count_expr(node.second_source)
        count.flops += 1.0  # the multiply of dot_product
    if node.mask is not None:
        count += count_expr(node.mask)
    count.flops += 1.0      # the accumulate

    element_size = _element_size(aau)
    ws = working_set_bytes(local_elements, max(len(count.arrays_touched), 1), element_size)
    hit = estimate_hit_ratio(memory, ws, element_size, stride1=True,
                             arrays_touched=len(count.arrays_touched),
                             options=ctx.options.memory)
    per_iter = iteration_time(count, proc, memory, precision=_precision(aau), hit_ratio=hit)
    compute = proc.loop_startup_overhead + local_elements * per_iter
    return Metrics(computation=compute)


def _reduction_local_elements(node: ReductionNode, ctx: InterpretationContext) -> float:
    """Static per-processor element count a reduction sweeps over."""
    if node.home_array:
        dist = ctx.compiled.mapping.distribution_of(node.home_array)
        if dist is not None:
            extent = _reference_extent(node.source, node.home_array, ctx)
            if extent is not None and dist.size > 0:
                return max(extent / max(dist.nprocs, 1), 1.0)
            return max(dist.avg_local_size(), 1.0)
    # replicated data: every node reduces the full extent
    extent = _any_reference_extent(node.source, ctx)
    return extent if extent is not None else 1.0


def _reference_extent(expr: ast.Expr, array: str, ctx: InterpretationContext) -> float | None:
    """Number of elements of *array* referenced by *expr* (sections honoured)."""
    for ref in ast.expr_array_refs(expr):
        if ref.name.lower() != array.lower():
            continue
        dist = ctx.compiled.mapping.distribution_of(array)
        shape = dist.shape if dist is not None else None
        total = 1.0
        for axis, index in enumerate(ref.indices):
            if isinstance(index, ast.Section):
                lo = ctx.eval(index.lo, 1.0)
                hi = ctx.eval(index.hi, float(shape[axis]) if shape else lo)
                stride = ctx.eval(index.stride, 1.0) or 1.0
                total *= max(math.floor((hi - lo) / stride) + 1, 0)
            else:
                total *= 1.0
        return total
    # whole-array reference through a Var
    for node in ast.walk_expr(expr):
        if isinstance(node, ast.Var) and node.name.lower() == array.lower():
            dist = ctx.compiled.mapping.distribution_of(array)
            if dist is not None:
                return float(dist.size)
    return None


def _any_reference_extent(expr: ast.Expr, ctx: InterpretationContext) -> float | None:
    for node in ast.walk_expr(expr):
        if isinstance(node, (ast.Var, ast.ArrayRef)):
            sym = ctx.compiled.symtable.get(node.name)
            if sym is not None and sym.is_array:
                try:
                    shape = ctx.compiled.symtable.array_shape(node.name, ctx.env)
                except Exception:
                    continue
                total = 1.0
                for extent in shape:
                    total *= extent
                return total
    return None


def interpret_loop_nest(aau: AAU, ctx: InterpretationContext) -> Metrics:
    """IterD AAU: the local computation level of a sequentialised forall."""
    node: LocalLoopNest = aau.spmd_node
    proc = ctx.machine.processing
    memory = ctx.machine.memory
    mapping = ctx.compiled.mapping

    home_dist = mapping.distribution_of(node.home_array) if node.home_array else None
    distributed = home_dist is not None and not home_dist.is_replicated

    # --- local iteration count (static, owner computes) -----------------------
    local_iterations = 1.0      # the slowest rank: ceil(trips / procs) per axis
    mean_iterations = 1.0       # the perfectly-even split: trips / procs
    global_iterations = 1.0
    for dim in node.loops:
        trips = _trip_count(ctx, dim.lo, dim.hi, dim.step)
        global_iterations *= trips
        procs_along = 1
        if distributed and dim.home_axis is not None and dim.home_axis < len(home_dist.axes):
            procs_along = max(home_dist.axes[dim.home_axis].nprocs, 1)
        if procs_along > 1:
            local_iterations *= math.ceil(trips / procs_along)
            mean_iterations *= trips / procs_along
        else:
            local_iterations *= trips
            mean_iterations *= trips

    # --- per-iteration cost ------------------------------------------------------
    count = count_statement_body(node.body, node.mask)
    element_size = _element_size(aau)
    precision = _precision(aau)
    stride1 = bool(aau.detail.get("stride1_innermost", True))
    ws = working_set_bytes(local_iterations, max(len(count.arrays_touched), 1), element_size)
    hit = estimate_hit_ratio(memory, ws, element_size, stride1=stride1,
                             arrays_touched=len(count.arrays_touched),
                             options=ctx.options.memory)
    per_iteration = iteration_time(count, proc, memory, precision=precision, hit_ratio=hit)

    if node.mask is not None:
        # evaluation of the mask happens every iteration; the assignment only on
        # the (statically assumed) true fraction
        assign_count = count_statement_body(node.body)
        assign_time = iteration_time(assign_count, proc, memory, precision=precision,
                                     hit_ratio=hit, include_loop_overhead=False)
        mask_time = iteration_time(count_expr(node.mask), proc, memory, precision=precision,
                                   hit_ratio=hit, include_loop_overhead=False)
        per_iteration = (
            proc.loop_iteration_overhead
            + proc.conditional_overhead
            + mask_time
            + ctx.options.mask_true_fraction * assign_time
        )

    compute = local_iterations * per_iteration
    overhead = len(node.loops) * proc.loop_startup_overhead
    if node.mask is not None:
        overhead += proc.conditional_overhead  # the guard's setup

    metrics = Metrics(computation=compute, overhead=overhead,
                      balanced_computation=mean_iterations * per_iteration)

    # Mask CondtD child bookkeeping: charge the conditional-evaluation share to it.
    for child in aau.children:
        if child.detail.get("mask"):
            child.detail["charged_us"] = local_iterations * proc.conditional_overhead
    return metrics


# dispatch table used by the engine ------------------------------------------------

def interpret_leaf(aau: AAU, ctx: InterpretationContext) -> Metrics:
    """Dispatch on the AAU's SPMD node type and return one-execution metrics."""
    node = aau.spmd_node
    if isinstance(node, SeqOverhead):
        return interpret_seq_overhead(aau, ctx)
    if isinstance(node, CommPhase):
        return interpret_comm_phase(aau, ctx)
    if isinstance(node, LocalLoopNest):
        return interpret_loop_nest(aau, ctx)
    if isinstance(node, ReductionNode):
        return interpret_reduction(aau, ctx)
    if isinstance(node, ShiftNode):
        return interpret_shift(aau, ctx)
    if isinstance(node, OwnerStmt):
        return interpret_owner_stmt(aau, ctx)
    if isinstance(node, SerialStmt):
        return interpret_serial_stmt(aau, ctx)
    return Metrics()
