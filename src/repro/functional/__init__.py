"""Functional interpreter: sequential, vectorised execution of HPF programs.

Used as the correctness oracle for the compiler + simulator path and as the
environment's stand-alone functional-checking tool.
"""

from .evaluator import (
    EvaluationResult,
    ForallExecution,
    FunctionalEvaluator,
    evaluate_program,
    execute_forall,
)
from .exprs import ExpressionEvaluator
from .state import ArrayValue, ProgramState

__all__ = [
    "EvaluationResult",
    "ForallExecution",
    "FunctionalEvaluator",
    "evaluate_program",
    "execute_forall",
    "ExpressionEvaluator",
    "ArrayValue",
    "ProgramState",
]
