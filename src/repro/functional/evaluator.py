"""Sequential functional interpreter for HPF/Fortran 90D programs.

This is the "functional interpreter" component of the application development
environment (§1): it executes a program's semantics — ignoring all mapping
directives — so the developer can check correctness, and it serves as the
oracle the simulator's results are validated against in the test suite.

Execution is vectorised with NumPy: foralls, array assignments and WHERE
statements evaluate their whole iteration space at once (right-hand sides are
fully evaluated before any assignment, as Fortran requires).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from ..frontend import ast_nodes as ast
from ..frontend.errors import EvaluationError
from ..frontend.symbols import SymbolTable
from .exprs import ExpressionEvaluator
from .state import ProgramState


class _ExitLoop(Exception):
    pass


class _CycleLoop(Exception):
    pass


class _StopProgram(Exception):
    pass


@dataclass
class ForallExecution:
    """Record of one executed forall: index spaces, mask, and update counts.

    The simulator's executor reuses this to derive *actual* per-processor
    iteration counts and mask-true fractions — the dynamic information the
    static interpreter does not have.
    """

    triplet_ranges: dict[str, np.ndarray] = field(default_factory=dict)  # Fortran index values
    grids: dict[str, np.ndarray] = field(default_factory=dict)
    mask: Optional[np.ndarray] = None
    iterations: int = 0
    assigned: int = 0

    @property
    def mask_true_fraction(self) -> float:
        if self.mask is None or self.iterations == 0:
            return 1.0
        return float(self.assigned) / float(self.iterations)


@dataclass
class EvaluationResult:
    """Final state plus output of one functional execution."""

    state: ProgramState
    printed: list[str]
    statements_executed: int
    forall_log: list[ForallExecution] = field(default_factory=list)

    def scalar(self, name: str) -> float:
        return self.state.get_scalar(name)

    def array(self, name: str) -> np.ndarray:
        return self.state.array(name).data


class FunctionalEvaluator:
    """Executes a parsed program sequentially on NumPy arrays."""

    def __init__(
        self,
        program: ast.Program,
        symtable: SymbolTable | None = None,
        params: Mapping[str, float] | None = None,
        max_while_iterations: int = 1_000_000,
    ):
        self.program = program
        self.symtable = symtable or SymbolTable.from_program(program)
        self.env = self.symtable.parameter_env(overrides=params)
        self.state = ProgramState.from_symtable(self.symtable, self.env)
        self.exprs = ExpressionEvaluator(self.state)
        self.max_while_iterations = max_while_iterations
        self.statements_executed = 0
        self.forall_log: list[ForallExecution] = []

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self) -> EvaluationResult:
        try:
            self._exec_body(self.program.body)
        except _StopProgram:
            self.state.stopped = True
        return EvaluationResult(
            state=self.state,
            printed=list(self.state.printed),
            statements_executed=self.statements_executed,
            forall_log=self.forall_log,
        )

    # ------------------------------------------------------------------
    # statement execution
    # ------------------------------------------------------------------

    def _exec_body(self, stmts: list[ast.Stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.Stmt) -> None:
        self.statements_executed += 1
        if isinstance(stmt, ast.Assignment):
            self.exec_assignment(stmt)
        elif isinstance(stmt, ast.ForallStmt):
            self.exec_forall(stmt)
        elif isinstance(stmt, ast.WhereStmt):
            self.exec_where(stmt)
        elif isinstance(stmt, ast.DoLoop):
            self.exec_do(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self.exec_do_while(stmt)
        elif isinstance(stmt, ast.IfBlock):
            self.exec_if(stmt)
        elif isinstance(stmt, ast.PrintStmt):
            self.exec_print(stmt)
        elif isinstance(stmt, ast.CallStmt):
            raise EvaluationError(
                f"CALL to external subroutine '{stmt.name}' is not supported by the "
                f"functional interpreter", )
        elif isinstance(stmt, ast.ExitStmt):
            raise _ExitLoop()
        elif isinstance(stmt, ast.CycleStmt):
            raise _CycleLoop()
        elif isinstance(stmt, ast.StopStmt):
            raise _StopProgram()
        elif isinstance(stmt, (ast.ContinueStmt, ast.Declaration, ast.ParameterStmt,
                               ast.Directive)):
            pass
        else:
            raise EvaluationError(f"cannot execute statement {type(stmt).__name__}")

    # -- assignments -------------------------------------------------------------

    def exec_assignment(self, stmt: ast.Assignment) -> None:
        target = stmt.target
        value = self.exprs.eval(stmt.value)

        if isinstance(target, ast.Var):
            name = target.name.lower()
            if self.state.is_array(name):
                array = self.state.array(name)
                array.data[...] = np.broadcast_to(np.asarray(value, dtype=array.data.dtype),
                                                  array.data.shape)
            else:
                self.state.set_scalar(name, self._scalarise(value))
            return

        if isinstance(target, ast.ArrayRef):
            array = self.state.array(target.name)
            indices = []
            for axis, index in enumerate(target.indices):
                if isinstance(index, ast.Section):
                    indices.append(self.exprs._section_slice(array, axis, index, {}))
                else:
                    indices.append(int(self._scalarise(self.exprs.eval(index)))
                                   - array.lower_bounds[axis])
            array.data[tuple(indices)] = value
            return

        raise EvaluationError("invalid assignment target")

    @staticmethod
    def _scalarise(value):
        if isinstance(value, np.ndarray):
            if value.size != 1:
                raise EvaluationError("array value assigned to a scalar")
            return value.reshape(()).item()
        if isinstance(value, (np.generic,)):
            return value.item()
        return value

    # -- forall --------------------------------------------------------------------

    def exec_forall(self, stmt: ast.ForallStmt) -> ForallExecution:
        record = execute_forall(stmt, self.state, self.exprs)
        self.forall_log.append(record)
        return record

    # -- where ----------------------------------------------------------------------

    def exec_where(self, stmt: ast.WhereStmt) -> None:
        mask = np.asarray(self.exprs.eval(stmt.mask), dtype=bool)
        for assign, use_mask in [(a, mask) for a in stmt.body] + \
                                [(a, ~mask) for a in stmt.elsewhere]:
            target = assign.target
            if not isinstance(target, ast.ArrayRef):
                raise EvaluationError("WHERE assignment target must be an array section")
            array = self.state.array(target.name)
            indices = []
            for axis, index in enumerate(target.indices):
                if isinstance(index, ast.Section):
                    indices.append(self.exprs._section_slice(array, axis, index, {}))
                else:
                    indices.append(int(self._scalarise(self.exprs.eval(index)))
                                   - array.lower_bounds[axis])
            view = array.data[tuple(indices)]
            value = np.broadcast_to(np.asarray(self.exprs.eval(assign.value)), view.shape)
            array.data[tuple(indices)] = np.where(use_mask, value, view)

    # -- loops ------------------------------------------------------------------------

    def exec_do(self, stmt: ast.DoLoop) -> None:
        start = int(self._scalarise(self.exprs.eval(stmt.start)))
        end = int(self._scalarise(self.exprs.eval(stmt.end)))
        step = int(self._scalarise(self.exprs.eval(stmt.step))) if stmt.step is not None else 1
        if step == 0:
            raise EvaluationError("DO loop step must be non-zero")
        var = stmt.var.lower()
        value = start
        try:
            while (step > 0 and value <= end) or (step < 0 and value >= end):
                self.state.set_scalar(var, value)
                try:
                    self._exec_body(stmt.body)
                except _CycleLoop:
                    pass
                value += step
        except _ExitLoop:
            pass
        self.state.set_scalar(var, value)

    def exec_do_while(self, stmt: ast.DoWhile) -> None:
        iterations = 0
        try:
            while bool(np.all(self.exprs.eval(stmt.cond))):
                iterations += 1
                if iterations > self.max_while_iterations:
                    raise EvaluationError("DO WHILE exceeded the iteration safety limit")
                try:
                    self._exec_body(stmt.body)
                except _CycleLoop:
                    continue
        except _ExitLoop:
            pass

    # -- conditionals ----------------------------------------------------------------

    def exec_if(self, stmt: ast.IfBlock) -> None:
        for cond, body in stmt.branches:
            if bool(np.all(self.exprs.eval(cond))):
                self._exec_body(body)
                return
        self._exec_body(stmt.else_body)

    # -- output -----------------------------------------------------------------------

    def exec_print(self, stmt: ast.PrintStmt) -> None:
        parts = []
        for item in stmt.items:
            value = self.exprs.eval(item)
            if isinstance(value, np.ndarray):
                parts.append(np.array2string(value, precision=6, threshold=8))
            elif isinstance(value, float):
                parts.append(f"{value:.6g}")
            else:
                parts.append(str(value))
        self.state.printed.append(" ".join(parts))


# ---------------------------------------------------------------------------
# standalone forall execution (shared with the simulator executor)
# ---------------------------------------------------------------------------


def execute_forall(
    stmt: ast.ForallStmt,
    state: ProgramState,
    exprs: ExpressionEvaluator | None = None,
) -> ForallExecution:
    """Execute one forall statement/construct, vectorised, and log its shape."""
    exprs = exprs or ExpressionEvaluator(state)
    record = ForallExecution()

    ranges: list[np.ndarray] = []
    names: list[str] = []
    for triplet in stmt.triplets:
        lo = int(np.asarray(exprs.eval(triplet.lo)))
        hi = int(np.asarray(exprs.eval(triplet.hi)))
        step = int(np.asarray(exprs.eval(triplet.step))) if triplet.step is not None else 1
        if step == 0:
            raise EvaluationError("forall stride must be non-zero")
        values = np.arange(lo, hi + (1 if step > 0 else -1), step, dtype=np.int64)
        ranges.append(values)
        names.append(triplet.var.lower())
        record.triplet_ranges[triplet.var.lower()] = values

    if any(len(r) == 0 for r in ranges):
        record.iterations = 0
        return record

    grids = np.meshgrid(*ranges, indexing="ij") if ranges else []
    index_env = {name: grid for name, grid in zip(names, grids)}
    record.grids = dict(index_env)
    record.iterations = int(np.prod([len(r) for r in ranges])) if ranges else 1

    mask = None
    if stmt.mask is not None:
        mask = np.broadcast_to(
            np.asarray(exprs.eval(stmt.mask, index_env), dtype=bool),
            grids[0].shape if grids else (),
        )
        record.mask = mask
        record.assigned = int(np.count_nonzero(mask))
    else:
        record.assigned = record.iterations

    for assign in stmt.body:
        _forall_assign(assign, state, exprs, index_env, mask)
    return record


def _forall_assign(
    assign: ast.Assignment,
    state: ProgramState,
    exprs: ExpressionEvaluator,
    index_env: dict[str, np.ndarray],
    mask: Optional[np.ndarray],
) -> None:
    target = assign.target
    if not isinstance(target, ast.ArrayRef):
        raise EvaluationError("forall body assignment target must be an array element")
    array = state.array(target.name)

    # evaluate every RHS value before any store (Fortran forall semantics)
    rhs = exprs.eval(assign.value, index_env)

    index_arrays = []
    for axis, index in enumerate(target.indices):
        value = exprs.eval(index, index_env)
        zero_based = np.asarray(value) - array.lower_bounds[axis]
        index_arrays.append(zero_based.astype(np.int64))

    shape = None
    for arr in index_arrays:
        if arr.ndim > 0:
            shape = np.broadcast_shapes(shape, arr.shape) if shape else arr.shape
    if shape is None:
        shape = ()

    broadcast_indices = [np.broadcast_to(arr, shape) for arr in index_arrays]
    rhs_grid = np.broadcast_to(np.asarray(rhs), shape) if shape else np.asarray(rhs)

    if mask is not None and shape:
        mask_grid = np.broadcast_to(mask, shape)
        selected = tuple(arr[mask_grid] for arr in broadcast_indices)
        array.data[selected] = rhs_grid[mask_grid]
    else:
        array.data[tuple(broadcast_indices)] = rhs_grid


def evaluate_program(
    program: ast.Program,
    symtable: SymbolTable | None = None,
    params: Mapping[str, float] | None = None,
) -> EvaluationResult:
    """Convenience wrapper: functionally execute *program* and return the result."""
    return FunctionalEvaluator(program, symtable, params).run()
