"""Program state for the functional interpreter and the simulator executor.

Holds the NumPy arrays and scalar values of a running HPF/Fortran 90D
program.  Arrays are stored **globally** (full extent) regardless of their HPF
distribution: the distribution algebra determines *timing* (who computes what,
what moves where), while functional values are kept in one place so the
functional interpreter and the timed simulator produce bit-identical results —
the standard trace-driven-simulation arrangement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..frontend.errors import EvaluationError
from ..frontend.symbols import SymbolTable

_DTYPES = {
    "integer": np.int64,
    "real": np.float64,       # evaluate in double precision for a stable oracle
    "double": np.float64,
    "logical": np.bool_,
}


@dataclass
class ArrayValue:
    """One array plus its declared lower bounds (Fortran indexing metadata)."""

    name: str
    data: np.ndarray
    lower_bounds: tuple[int, ...]

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.data.shape)

    def to_zero_based(self, axis: int, index):
        """Convert a Fortran index (scalar or ndarray) on *axis* to 0-based."""
        return index - self.lower_bounds[axis]


@dataclass
class ProgramState:
    """All live values of one program execution."""

    arrays: dict[str, ArrayValue] = field(default_factory=dict)
    scalars: dict[str, float] = field(default_factory=dict)
    printed: list[str] = field(default_factory=list)
    stopped: bool = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_symtable(
        cls,
        symtable: SymbolTable,
        env: Mapping[str, float],
    ) -> "ProgramState":
        """Allocate every declared array (zero-initialised) and scalar."""
        state = cls()
        for sym in symtable:
            name = sym.name.lower()
            if sym.is_array and sym.array_spec is not None:
                shape = symtable.array_shape(name, env)
                lower = symtable.array_lower_bounds(name, env)
                dtype = _DTYPES.get(sym.type_name, np.float64)
                state.arrays[name] = ArrayValue(
                    name=name,
                    data=np.zeros(shape, dtype=dtype),
                    lower_bounds=lower,
                )
            else:
                if sym.is_parameter and name in env:
                    state.scalars[name] = float(env[name])
                else:
                    state.scalars[name] = 0.0
        # expose remaining environment constants (problem-size overrides, etc.)
        for key, value in env.items():
            state.scalars.setdefault(key.lower(), float(value))
        return state

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    def is_array(self, name: str) -> bool:
        return name.lower() in self.arrays

    def array(self, name: str) -> ArrayValue:
        try:
            return self.arrays[name.lower()]
        except KeyError:
            raise EvaluationError(f"reference to unknown array '{name}'") from None

    def get_scalar(self, name: str) -> float:
        key = name.lower()
        if key in self.scalars:
            return self.scalars[key]
        raise EvaluationError(f"reference to unknown scalar '{name}'")

    def set_scalar(self, name: str, value) -> None:
        self.scalars[name.lower()] = value

    def declare_array(self, name: str, shape: tuple[int, ...],
                      lower_bounds: tuple[int, ...] | None = None,
                      dtype=np.float64) -> ArrayValue:
        value = ArrayValue(
            name=name.lower(),
            data=np.zeros(shape, dtype=dtype),
            lower_bounds=lower_bounds or tuple(1 for _ in shape),
        )
        self.arrays[name.lower()] = value
        return value

    def snapshot(self) -> dict[str, np.ndarray]:
        """Copy of every array (for comparing evaluator vs simulator results)."""
        return {name: value.data.copy() for name, value in self.arrays.items()}

    def checksum(self) -> float:
        """A cheap fingerprint of all array contents (used in tests)."""
        total = 0.0
        for value in self.arrays.values():
            data = value.data
            if data.dtype == np.bool_:
                total += float(np.count_nonzero(data))
            else:
                finite = np.nan_to_num(data.astype(np.float64), nan=0.0,
                                       posinf=0.0, neginf=0.0)
                total += float(np.sum(finite))
        return total
