"""Vectorised (NumPy) evaluation of HPF/Fortran 90D expressions.

Shared by the sequential functional interpreter (the correctness oracle) and
the simulator's SPMD executor.  Expressions are evaluated against a
:class:`~repro.functional.state.ProgramState`; inside data-parallel contexts an
``index_env`` maps forall index variables to NumPy index grids so whole
iteration spaces evaluate in one vectorised sweep (per the HPC guides: never
loop element-by-element in Python).
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from ..frontend import ast_nodes as ast
from ..frontend.errors import EvaluationError
from .state import ProgramState

Number = float | int | np.ndarray


# ---------------------------------------------------------------------------
# elemental intrinsic implementations
# ---------------------------------------------------------------------------

_ELEMENTAL = {
    "sqrt": np.sqrt,
    "exp": np.exp,
    "log": np.log,
    "log10": np.log10,
    "sin": np.sin,
    "cos": np.cos,
    "tan": np.tan,
    "atan": np.arctan,
    "asin": np.arcsin,
    "acos": np.arccos,
    "sinh": np.sinh,
    "cosh": np.cosh,
    "tanh": np.tanh,
    "abs": np.abs,
    "aint": np.trunc,
    "nint": np.rint,
}


def _fortran_int_div(left, right):
    """Fortran integer division truncates toward zero."""
    return np.trunc(np.divide(left, right)).astype(np.int64)


def _is_integer_like(value) -> bool:
    if isinstance(value, (bool, np.bool_)):
        return False
    if isinstance(value, (int, np.integer)):
        return True
    if isinstance(value, np.ndarray):
        return np.issubdtype(value.dtype, np.integer)
    return False


class ExpressionEvaluator:
    """Evaluates expressions against a program state."""

    def __init__(self, state: ProgramState):
        self.state = state

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def eval(self, expr: ast.Expr, index_env: Optional[Mapping[str, np.ndarray]] = None):
        index_env = index_env or {}
        return self._eval(expr, index_env)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def _eval(self, expr: ast.Expr, env: Mapping[str, np.ndarray]):
        if isinstance(expr, ast.Num):
            return int(expr.value) if expr.is_int else float(expr.value)
        if isinstance(expr, ast.Str):
            return expr.value
        if isinstance(expr, ast.LogicalLit):
            return bool(expr.value)
        if isinstance(expr, ast.Var):
            return self._eval_var(expr, env)
        if isinstance(expr, ast.ArrayRef):
            return self._eval_array_ref(expr, env)
        if isinstance(expr, ast.FuncCall):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.UnaryOp):
            operand = self._eval(expr.operand, env)
            if expr.op == "-":
                return -operand
            if expr.op == "+":
                return operand
            if expr.op == ".not.":
                return np.logical_not(operand)
            raise EvaluationError(f"unsupported unary operator '{expr.op}'")
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr, env)
        if isinstance(expr, ast.Compare):
            left = self._eval(expr.left, env)
            right = self._eval(expr.right, env)
            return {
                "==": np.equal, "/=": np.not_equal,
                "<": np.less, "<=": np.less_equal,
                ">": np.greater, ">=": np.greater_equal,
            }[expr.op](left, right)
        if isinstance(expr, ast.Logical):
            left = self._eval(expr.left, env)
            right = self._eval(expr.right, env)
            if expr.op == ".and.":
                return np.logical_and(left, right)
            if expr.op == ".or.":
                return np.logical_or(left, right)
            if expr.op == ".eqv.":
                return np.equal(np.asarray(left, dtype=bool), np.asarray(right, dtype=bool))
            if expr.op == ".neqv.":
                return np.not_equal(np.asarray(left, dtype=bool), np.asarray(right, dtype=bool))
        if isinstance(expr, ast.Section):
            raise EvaluationError("array section used outside of a subscript")
        raise EvaluationError(f"cannot evaluate expression node {type(expr).__name__}")

    # ------------------------------------------------------------------
    # leaves
    # ------------------------------------------------------------------

    def _eval_var(self, expr: ast.Var, env: Mapping[str, np.ndarray]):
        name = expr.name.lower()
        if name in env:
            return env[name]
        if self.state.is_array(name):
            return self.state.array(name).data
        return self.state.get_scalar(name)

    def _eval_array_ref(self, expr: ast.ArrayRef, env: Mapping[str, np.ndarray]):
        if not self.state.is_array(expr.name):
            raise EvaluationError(f"'{expr.name}' is subscripted but is not an array", )
        array = self.state.array(expr.name)
        data = array.data

        has_section = any(isinstance(ix, ast.Section) for ix in expr.indices)
        evaluated = []
        any_ndarray = False
        for axis, index in enumerate(expr.indices):
            if isinstance(index, ast.Section):
                evaluated.append(self._section_slice(array, axis, index, env))
            else:
                value = self._eval(index, env)
                if isinstance(value, np.ndarray):
                    any_ndarray = True
                evaluated.append(value)

        if has_section and any_ndarray:
            raise EvaluationError(
                f"mixed section / vector subscripts on '{expr.name}' are not supported"
            )

        if has_section or not any_ndarray:
            # basic indexing (scalars zero-based + slices)
            indices = []
            for axis, value in enumerate(evaluated):
                if isinstance(value, slice):
                    indices.append(value)
                else:
                    indices.append(int(value) - array.lower_bounds[axis])
            return data[tuple(indices)]

        # vectorised (forall) indexing: every subscript becomes a zero-based
        # integer array; NumPy broadcasting aligns the index grids.
        indices = []
        for axis, value in enumerate(evaluated):
            zero_based = np.asarray(value) - array.lower_bounds[axis]
            indices.append(zero_based.astype(np.int64))
        return data[tuple(indices)]

    def _section_slice(self, array, axis: int, section: ast.Section,
                       env: Mapping[str, np.ndarray]) -> slice:
        lb = array.lower_bounds[axis]
        extent = array.shape[axis]
        lo = self._eval(section.lo, env) if section.lo is not None else lb
        hi = self._eval(section.hi, env) if section.hi is not None else lb + extent - 1
        stride = self._eval(section.stride, env) if section.stride is not None else 1
        lo_i, hi_i, stride_i = int(lo), int(hi), int(stride)
        if stride_i == 0:
            raise EvaluationError("array section stride must be non-zero")
        start = lo_i - lb
        stop = hi_i - lb + (1 if stride_i > 0 else -1)
        if stride_i < 0 and stop < 0:
            stop = None  # type: ignore[assignment]
        return slice(start, stop, stride_i)

    # ------------------------------------------------------------------
    # operators and intrinsics
    # ------------------------------------------------------------------

    def _eval_binop(self, expr: ast.BinOp, env: Mapping[str, np.ndarray]):
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        if expr.op == "+":
            return np.add(left, right)
        if expr.op == "-":
            return np.subtract(left, right)
        if expr.op == "*":
            return np.multiply(left, right)
        if expr.op == "/":
            if _is_integer_like(left) and _is_integer_like(right):
                return _fortran_int_div(left, right)
            return np.divide(left, right)
        if expr.op == "**":
            return np.power(np.asarray(left, dtype=np.float64) if _is_integer_like(left)
                            and not _is_integer_like(right) else left, right)
        if expr.op == "//":
            return str(left) + str(right)
        raise EvaluationError(f"unsupported binary operator '{expr.op}'")

    def _eval_call(self, expr: ast.FuncCall, env: Mapping[str, np.ndarray]):
        name = expr.name.lower()
        args = [self._eval(a, env) for a in expr.args]

        if name in _ELEMENTAL:
            return _ELEMENTAL[name](args[0])
        if name in ("real", "dble", "float"):
            value = np.asarray(args[0], dtype=np.float64)
            return value if value.ndim else float(value)
        if name == "int":
            value = np.trunc(np.asarray(args[0])).astype(np.int64)
            return value if value.ndim else int(value)
        if name == "max":
            result = args[0]
            for other in args[1:]:
                result = np.maximum(result, other)
            return result
        if name == "min":
            result = args[0]
            for other in args[1:]:
                result = np.minimum(result, other)
            return result
        if name in ("mod",):
            return np.fmod(args[0], args[1])
        if name == "modulo":
            return np.mod(args[0], args[1])
        if name == "sign":
            return np.copysign(np.abs(args[0]), args[1])
        if name == "merge":
            return np.where(np.asarray(args[2], dtype=bool), args[0], args[1])
        if name == "atan2":
            return np.arctan2(args[0], args[1])

        # reductions ---------------------------------------------------------
        if name in ("sum", "product", "maxval", "minval", "count", "any", "all"):
            data = np.asarray(args[0])
            mask = None
            if len(args) > 1 and not isinstance(expr.args[1], ast.Num):
                mask = np.asarray(args[1], dtype=bool)
            if name == "count":
                source = np.asarray(args[0], dtype=bool)
                return int(np.count_nonzero(source))
            if mask is not None:
                if name in ("sum",):
                    return float(np.sum(np.where(mask, data, 0.0)))
                if name == "product":
                    return float(np.prod(np.where(mask, data, 1.0)))
                if name == "maxval":
                    return float(np.max(np.where(mask, data, -np.inf)))
                if name == "minval":
                    return float(np.min(np.where(mask, data, np.inf)))
            if name == "sum":
                return float(np.sum(data))
            if name == "product":
                return float(np.prod(data))
            if name == "maxval":
                return float(np.max(data))
            if name == "minval":
                return float(np.min(data))
            if name == "any":
                return bool(np.any(data))
            if name == "all":
                return bool(np.all(data))
        if name in ("maxloc", "minloc"):
            data = np.asarray(args[0])
            flat = np.argmax(data) if name == "maxloc" else np.argmin(data)
            return int(flat) + 1  # Fortran 1-based location (flattened)
        if name == "dot_product":
            return float(np.dot(np.asarray(args[0], dtype=np.float64).ravel(),
                                np.asarray(args[1], dtype=np.float64).ravel()))
        if name == "matmul":
            return np.matmul(args[0], args[1])
        if name == "transpose":
            return np.transpose(args[0])
        if name == "spread":
            data, dim, ncopies = args[0], int(args[1]), int(args[2])
            return np.repeat(np.expand_dims(np.asarray(data), axis=dim - 1), ncopies, axis=dim - 1)
        if name == "reshape":
            shape = tuple(int(v) for v in np.asarray(args[1]).ravel())
            return np.reshape(np.asarray(args[0]), shape, order="F")

        # shifts -------------------------------------------------------------
        if name in ("cshift", "tshift"):
            data = np.asarray(args[0])
            shift = int(np.asarray(args[1])) if len(args) > 1 else 1
            axis = int(args[2]) - 1 if len(args) > 2 else 0
            return np.roll(data, -shift, axis=axis)
        if name == "eoshift":
            data = np.asarray(args[0])
            shift = int(np.asarray(args[1])) if len(args) > 1 else 1
            fill = args[2] if len(args) > 2 else 0.0
            axis = int(args[3]) - 1 if len(args) > 3 else 0
            result = np.roll(data, -shift, axis=axis)
            index = [slice(None)] * data.ndim
            if shift > 0:
                index[axis] = slice(data.shape[axis] - shift, None)
            elif shift < 0:
                index[axis] = slice(0, -shift)
            if shift != 0:
                result[tuple(index)] = fill
            return result

        # inquiry -------------------------------------------------------------
        if name == "size":
            data = np.asarray(args[0])
            if len(args) > 1:
                return int(data.shape[int(args[1]) - 1])
            return int(data.size)
        if name in ("lbound", "ubound"):
            ref = expr.args[0]
            if isinstance(ref, (ast.Var, ast.ArrayRef)) and self.state.is_array(ref.name):
                array = self.state.array(ref.name)
                dim = int(args[1]) - 1 if len(args) > 1 else 0
                if name == "lbound":
                    return int(array.lower_bounds[dim])
                return int(array.lower_bounds[dim] + array.shape[dim] - 1)
        if name == "shape":
            return np.asarray(np.asarray(args[0]).shape, dtype=np.int64)

        raise EvaluationError(f"unsupported intrinsic or function '{expr.name}'")
