"""The System Abstraction Graph (SAG): a rooted tree of SAUs.

The SAG is built off-line, once per machine (§3.1, §4.4): the root abstracts
the complete HPC system; its children abstract the host (SRM), the compute
cube, and the host↔cube channel; leaves abstract individual nodes.  The
interpretation engine resolves, for every Application Abstraction Unit, which
SAU exports the parameters it should be charged against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .sau import SAU


@dataclass
class SAG:
    """A rooted tree of :class:`~repro.system.sau.SAU` objects."""

    root: SAU
    machine_name: str = "generic"

    def find(self, name: str) -> Optional[SAU]:
        return self.root.find(name)

    def node_sau(self) -> SAU:
        """The SAU describing one compute node (the unit AAUs are charged against)."""
        node = self.root.find("node")
        if node is not None:
            return node
        # fall back to the first leaf
        for sau in self.root.walk():
            if not sau.children:
                return sau
        return self.root

    def cube_sau(self) -> SAU:
        """The SAU describing the compute partition (interconnect parameters).

        Named ``cube`` on the iPSC/860; other machines name it after their
        fabric (``mesh``, ``switch``), so fall back to the first SAU at the
        ``cluster`` level.
        """
        cube = self.root.find("cube")
        if cube is not None:
            return cube
        for sau in self.root.walk():
            if sau.level == "cluster":
                return sau
        return self.root

    def host_sau(self) -> Optional[SAU]:
        return self.root.find("host")

    def num_nodes(self) -> int:
        cube = self.cube_sau()
        if cube is not None and "num_nodes" in cube.attributes:
            return int(cube.attributes["num_nodes"])
        return self.root.leaf_count()

    def walk(self):
        yield from self.root.walk()

    def describe(self) -> str:
        return f"SAG for {self.machine_name}\n" + self.root.describe(indent=1)


@dataclass
class SAGLibrary:
    """A small registry of machine abstractions available to the framework."""

    sags: dict[str, SAG] = field(default_factory=dict)

    def register(self, sag: SAG) -> None:
        self.sags[sag.machine_name.lower()] = sag

    def get(self, name: str) -> Optional[SAG]:
        return self.sags.get(name.lower())

    def names(self) -> list[str]:
        return sorted(self.sags)
