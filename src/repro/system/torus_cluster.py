"""Off-line abstraction of a T3D-class 2-D torus multicomputer.

The fourth machine target of the registry: a Cray T3D-style system — fast
150 MHz RISC (Alpha-class) compute nodes on a wraparound 2-D torus with
dimension-ordered routing that takes the shorter way around each ring.  The
parameter set follows the same off-line methodology as the other targets
(vendor specifications + instruction counts + benchmarking-style constants);
as there, the *relationships* between the numbers define the machine class:

* hardware-supported messaging: startup well below the iPSC/860 and the
  switched cluster, link bandwidth the highest of the registry,
* torus wrap links halve worst-case hop distances relative to the mesh and
  double its bisection width,
* node flops the fastest of the registry (150 MHz superscalar RISC) but with
  small (8 KB) direct-mapped caches, so the memory model matters more.
"""

from __future__ import annotations

from .machine import Machine
from .sag import SAG
from .sau import (
    SAU,
    CommunicationComponent,
    IOComponent,
    MemoryComponent,
    ProcessingComponent,
)

# Node-level components -------------------------------------------------------

ALPHA_PROCESSING = ProcessingComponent(
    clock_mhz=150.0,
    flop_time_sp=0.045,
    flop_time_dp=0.060,
    divide_time=0.42,
    int_op_time=0.020,
    branch_time=0.052,
    loop_iteration_overhead=0.095,
    loop_startup_overhead=0.95,
    conditional_overhead=0.115,
    call_overhead=0.85,
    assignment_overhead=0.026,
    peak_mflops_sp=150.0,
    peak_mflops_dp=150.0,
)

ALPHA_MEMORY = MemoryComponent(
    icache_kbytes=8.0,
    dcache_kbytes=8.0,
    main_memory_mbytes=64.0,
    cache_line_bytes=32,
    hit_time=0.014,
    miss_penalty=0.40,
    write_through_penalty=0.07,
    memory_bandwidth_mbs=320.0,
)

TORUS_COMMUNICATION = CommunicationComponent(
    startup_latency=26.0,
    long_startup_latency=58.0,
    long_message_threshold=4096,
    per_byte=0.008,              # ≈ 125 MB/s sustained per link
    per_hop=0.045,               # torus router pass-through
    packetization_bytes=4096,
    per_packet_overhead=2.2,
    barrier_per_stage=32.0,      # hardware barrier tree assists
    collective_call_overhead=18.0,
)

TORUS_NODE_IO = IOComponent(open_close_time=8000.0, per_byte=0.25, seek_time=12000.0)


def build_torus_cluster_sag(num_nodes: int = 8) -> SAG:
    """Build the SAG for a T3D-class torus partition of *num_nodes* nodes."""
    if num_nodes < 1:
        raise ValueError("a torus partition needs at least one node")

    root = SAU(
        name="system",
        level="system",
        description=f"T3D-class 2-D torus system ({num_nodes} nodes)",
        processing=ALPHA_PROCESSING,
        memory=ALPHA_MEMORY,
        communication=TORUS_COMMUNICATION,
        io=TORUS_NODE_IO,
    )

    torus = SAU(
        name="torus",
        level="cluster",
        description=f"{num_nodes}-node RISC partition (2-D wraparound torus, "
                    "shortest-way XY routing)",
        processing=ALPHA_PROCESSING,
        memory=ALPHA_MEMORY,
        communication=TORUS_COMMUNICATION,
        io=TORUS_NODE_IO,
        attributes={"num_nodes": float(num_nodes)},
    )
    root.add_child(torus)

    node = SAU(
        name="node",
        level="node",
        description="150 MHz Alpha-class node: 8 KB I-cache, 8 KB D-cache, 64 MB memory",
        processing=ALPHA_PROCESSING,
        memory=ALPHA_MEMORY,
        communication=TORUS_COMMUNICATION,
        io=TORUS_NODE_IO,
    )
    torus.add_child(node)

    return SAG(root=root, machine_name=f"Torus-{num_nodes}")


def torus_cluster(num_nodes: int = 8, noise_seed: int = 0) -> Machine:
    """A T3D-class 2-D torus partition with *num_nodes* compute nodes."""
    sag = build_torus_cluster_sag(num_nodes)
    return Machine(name=sag.machine_name, sag=sag, num_nodes=num_nodes,
                   noise_seed=noise_seed, topology_kind="torus")
