"""Off-line abstraction of a switched workstation-cluster target.

The third machine target of the registry: a Delta/SP-class cluster — fast
RISC workstations (62.5 MHz, large caches, generous memory) connected by a
central crossbar switch.  Every node pair is a constant two hops apart (node
→ switch → node) and disjoint pairs never contend inside the fabric, but the
message-passing software stack is heavy: startup latency dominates all but
bulk transfers, which is the defining trade-off of this machine class:

* node flops ~2x faster than the iPSC/860's i860 XR, caches 4-8x larger,
* message startup ~3x *more* expensive (protocol stack + switch setup),
* sustained bandwidth ~3x higher than the cube link, far below the mesh.
"""

from __future__ import annotations

from .machine import Machine
from .sag import SAG
from .sau import (
    SAU,
    CommunicationComponent,
    IOComponent,
    MemoryComponent,
    ProcessingComponent,
)

# Node-level components -------------------------------------------------------

RISC_PROCESSING = ProcessingComponent(
    clock_mhz=62.5,
    flop_time_sp=0.055,
    flop_time_dp=0.070,
    divide_time=0.60,
    int_op_time=0.030,
    branch_time=0.080,
    loop_iteration_overhead=0.120,
    loop_startup_overhead=1.10,
    conditional_overhead=0.150,
    call_overhead=1.00,
    assignment_overhead=0.035,
    peak_mflops_sp=125.0,
    peak_mflops_dp=125.0,
)

RISC_MEMORY = MemoryComponent(
    icache_kbytes=32.0,
    dcache_kbytes=64.0,
    main_memory_mbytes=128.0,
    cache_line_bytes=64,
    hit_time=0.018,
    miss_penalty=0.35,
    write_through_penalty=0.06,
    memory_bandwidth_mbs=150.0,
)

SWITCH_COMMUNICATION = CommunicationComponent(
    startup_latency=240.0,
    long_startup_latency=330.0,
    long_message_threshold=4096,
    per_byte=0.115,              # ≈ 8.7 MB/s through the adapter
    per_hop=4.0,                 # one switch traversal
    packetization_bytes=4096,
    per_packet_overhead=18.0,
    barrier_per_stage=270.0,
    collective_call_overhead=120.0,
)

CLUSTER_NODE_IO = IOComponent(open_close_time=6000.0, per_byte=0.20, seek_time=9000.0)


def build_cluster_sag(num_nodes: int = 8) -> SAG:
    """Build the SAG for a switched cluster of *num_nodes* workstations."""
    if num_nodes < 1:
        raise ValueError("a cluster partition needs at least one node")

    root = SAU(
        name="system",
        level="system",
        description=f"switched workstation cluster ({num_nodes} nodes)",
        processing=RISC_PROCESSING,
        memory=RISC_MEMORY,
        communication=SWITCH_COMMUNICATION,
        io=CLUSTER_NODE_IO,
    )

    switch = SAU(
        name="switch",
        level="cluster",
        description=f"{num_nodes}-port central crossbar (constant 2-hop routes)",
        processing=RISC_PROCESSING,
        memory=RISC_MEMORY,
        communication=SWITCH_COMMUNICATION,
        io=CLUSTER_NODE_IO,
        attributes={"num_nodes": float(num_nodes)},
    )
    root.add_child(switch)

    node = SAU(
        name="node",
        level="node",
        description="62.5 MHz RISC workstation: 32 KB I-cache, 64 KB D-cache, 128 MB",
        processing=RISC_PROCESSING,
        memory=RISC_MEMORY,
        communication=SWITCH_COMMUNICATION,
        io=CLUSTER_NODE_IO,
    )
    switch.add_child(node)

    return SAG(root=root, machine_name=f"Cluster-{num_nodes}")


def cluster(num_nodes: int = 8, noise_seed: int = 0) -> Machine:
    """A switched workstation cluster with *num_nodes* nodes."""
    sag = build_cluster_sag(num_nodes)
    return Machine(name=sag.machine_name, sag=sag, num_nodes=num_nodes,
                   noise_seed=noise_seed, topology_kind="switch")
