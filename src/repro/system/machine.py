"""The fully-characterised target machine handed to Phase 2 and the simulator.

A :class:`Machine` bundles the off-line SAG/SAU parameter characterisation
with the structural interconnect abstraction (:mod:`repro.system.topology`).
Concrete machines (the iPSC/860 hypercube, the Paragon-class 2-D mesh, the
switched cluster) are built by their own modules and made discoverable by
name through :mod:`repro.system.registry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .sag import SAG
from .sau import (
    SAU,
    CommunicationComponent,
    MemoryComponent,
    ProcessingComponent,
)
from .topology import Topology, make_topology


@dataclass
class Machine:
    """A fully-characterised target machine handed to Phase 2 and the simulator."""

    name: str
    sag: SAG
    num_nodes: int
    noise_seed: int = 0
    topology_kind: str = "hypercube"
    #: optional (rows, cols) override for shaped interconnects (mesh, torus);
    #: applied only to partitions the shape exactly tiles — subpartitions fall
    #: back to the near-square factorisation
    topology_shape: tuple[int, int] | None = None
    attributes: dict[str, float] = field(default_factory=dict)

    @property
    def node(self) -> SAU:
        return self.sag.node_sau()

    @property
    def cube(self) -> SAU:
        return self.sag.cube_sau()

    @property
    def host(self) -> SAU | None:
        return self.sag.host_sau()

    @property
    def processing(self) -> ProcessingComponent:
        return self.node.processing

    @property
    def memory(self) -> MemoryComponent:
        return self.node.memory

    @property
    def communication(self) -> CommunicationComponent:
        return self.cube.communication

    def topology(self, num_nodes: int | None = None) -> Topology:
        """The interconnect topology of a *num_nodes* partition of this machine."""
        nodes = num_nodes or self.num_nodes
        shape = self.topology_shape
        if shape is not None and shape[0] * shape[1] != nodes:
            shape = None
        return make_topology(self.topology_kind, nodes, shape=shape)

    def scaled(self, *, flop_scale: float = 1.0, latency_scale: float = 1.0,
               bandwidth_scale: float = 1.0, name: str | None = None) -> "Machine":
        """A perturbed copy of this machine (for sensitivity/ablation studies)."""
        node = self.node.with_processing(
            flop_time_sp=self.processing.flop_time_sp * flop_scale,
            flop_time_dp=self.processing.flop_time_dp * flop_scale,
        )
        cube = self.cube.with_communication(
            startup_latency=self.communication.startup_latency * latency_scale,
            long_startup_latency=self.communication.long_startup_latency * latency_scale,
            per_byte=self.communication.per_byte / max(bandwidth_scale, 1e-9),
        )
        root = SAU(name="system", level="system",
                   description=f"perturbed copy of {self.name}")
        host = self.host
        if host is not None:
            root.add_child(host)
        cube.children = [node]
        cube.attributes = dict(self.cube.attributes)
        root.add_child(cube)
        sag = SAG(root=root, machine_name=name or f"{self.name}-scaled")
        return Machine(name=sag.machine_name, sag=sag, num_nodes=self.num_nodes,
                       noise_seed=self.noise_seed, topology_kind=self.topology_kind,
                       topology_shape=self.topology_shape,
                       attributes=dict(self.attributes))
