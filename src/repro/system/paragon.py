"""Off-line abstraction of a Paragon-class 2-D mesh multicomputer.

The second machine target of the registry: an Intel Paragon XP/S-style
system — i860 XP compute nodes (50 MHz, 16 KB I-cache / 16 KB D-cache,
32 MB memory) on a 2-D wormhole-routed mesh with XY routing.  The parameter
set follows the same off-line methodology as the iPSC/860 abstraction
(vendor specifications + instruction counts + benchmarking-style constants)
and, as there, it is the *relationships* between the numbers that matter:

* message startup is ~2x cheaper than the iPSC/860 (NX on OSF/1 with the
  message co-processor), sustained link bandwidth ~25x higher,
* the per-hop cost of the wormhole routers is two orders of magnitude below
  the store-and-forward-style Direct-Connect hop cost,
* node flops are ~25 % faster (50 MHz XP vs 40 MHz XR) with caches twice
  the size.
"""

from __future__ import annotations

from .machine import Machine
from .sag import SAG
from .sau import (
    SAU,
    CommunicationComponent,
    IOComponent,
    MemoryComponent,
    ProcessingComponent,
)

# Node-level components -------------------------------------------------------

I860XP_PROCESSING = ProcessingComponent(
    clock_mhz=50.0,
    flop_time_sp=0.084,
    flop_time_dp=0.140,
    divide_time=0.72,
    int_op_time=0.036,
    branch_time=0.096,
    loop_iteration_overhead=0.144,
    loop_startup_overhead=1.28,
    conditional_overhead=0.176,
    call_overhead=1.12,
    assignment_overhead=0.04,
    peak_mflops_sp=100.0,
    peak_mflops_dp=75.0,
)

I860XP_MEMORY = MemoryComponent(
    icache_kbytes=16.0,
    dcache_kbytes=16.0,
    main_memory_mbytes=32.0,
    cache_line_bytes=32,
    hit_time=0.020,
    miss_penalty=0.45,
    write_through_penalty=0.08,
    memory_bandwidth_mbs=90.0,
)

MESH_COMMUNICATION = CommunicationComponent(
    startup_latency=42.0,
    long_startup_latency=95.0,
    long_message_threshold=8192,   # NX-style rendezvous switch at 8 KB
    per_byte=0.014,              # ≈ 70 MB/s sustained per link
    per_hop=0.06,                # wormhole router pass-through
    packetization_bytes=4096,
    per_packet_overhead=2.5,
    barrier_per_stage=48.0,
    collective_call_overhead=22.0,
)

MESH_NODE_IO = IOComponent(open_close_time=9000.0, per_byte=0.30, seek_time=14000.0)


def build_paragon_sag(num_nodes: int = 8) -> SAG:
    """Build the SAG for a Paragon-class mesh partition of *num_nodes* nodes."""
    if num_nodes < 1:
        raise ValueError("a Paragon partition needs at least one node")

    root = SAU(
        name="system",
        level="system",
        description=f"Paragon-class 2-D mesh system ({num_nodes} nodes)",
        processing=I860XP_PROCESSING,
        memory=I860XP_MEMORY,
        communication=MESH_COMMUNICATION,
        io=MESH_NODE_IO,
    )

    mesh = SAU(
        name="mesh",
        level="cluster",
        description=f"{num_nodes}-node i860 XP partition (2-D wormhole mesh, XY routing)",
        processing=I860XP_PROCESSING,
        memory=I860XP_MEMORY,
        communication=MESH_COMMUNICATION,
        io=MESH_NODE_IO,
        attributes={"num_nodes": float(num_nodes)},
    )
    root.add_child(mesh)

    node = SAU(
        name="node",
        level="node",
        description="i860 XP node: 50 MHz, 16 KB I-cache, 16 KB D-cache, 32 MB memory",
        processing=I860XP_PROCESSING,
        memory=I860XP_MEMORY,
        communication=MESH_COMMUNICATION,
        io=MESH_NODE_IO,
    )
    mesh.add_child(node)

    return SAG(root=root, machine_name=f"Paragon-{num_nodes}")


def paragon(num_nodes: int = 8, noise_seed: int = 0) -> Machine:
    """A Paragon-class 2-D mesh partition with *num_nodes* compute nodes."""
    sag = build_paragon_sag(num_nodes)
    return Machine(name=sag.machine_name, sag=sag, num_nodes=num_nodes,
                   noise_seed=noise_seed, topology_kind="mesh")
