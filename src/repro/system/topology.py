"""Topology-agnostic interconnect abstraction of the Systems Module.

The paper's framework is machine-retargetable: the Systems Module is the only
machine-specific part, and the rest of the toolchain consumes the parameters
it exports.  This module provides the *structural* half of that abstraction —
how the compute nodes of a partition are wired together — as a small
:class:`Topology` protocol with three implementations:

* :class:`HypercubeTopology` — the iPSC/860 Direct-Connect binary hypercube
  with dimension-ordered (e-cube) circuit-switched routing,
* :class:`MeshTopology`      — a Paragon-style 2-D wormhole mesh with
  deterministic XY (column-then-row) routing,
* :class:`TorusTopology`     — a 2-D wraparound mesh (T3D-class torus) with
  XY routing that takes the shorter way around each ring,
* :class:`SwitchedTopology`  — a Delta/cluster-style crossbar where every
  node pair is a constant number of hops apart through a central switch.

Every consumer (the analytic communication models, the message-level network
simulator, the collective algorithms) dispatches through the protocol, so a
new machine only has to provide a topology and a SAU parameter set.

Topologies also export the *collective schedules* the HPF runtime library
would use on them (binomial/recursive-doubling trees on the cube and the
switch, row–column trees on the mesh).  Both the static interpreter and the
simulator consume the same schedule, so estimate-vs-measurement differences
remain purely dynamic (contention, imbalance, jitter) rather than algorithmic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Hashable, Iterable, Protocol, runtime_checkable

from ..frontend.errors import ReproError

#: A directed traversal of one physical link, as an (origin, destination) pair
#: of node labels.  The switch in a :class:`SwitchedTopology` appears as the
#: pseudo-node :data:`SWITCH_NODE`.
Hop = tuple[int, int]

#: One stage of a collective schedule: (sender_position, receiver_position)
#: pairs that communicate concurrently.  Positions index into the ordered rank
#: list of the collective, not physical node labels.
Stage = list[tuple[int, int]]

#: Pseudo-node label of the central crossbar of a :class:`SwitchedTopology`.
SWITCH_NODE = -1


class TopologyError(ReproError, ValueError):
    """Raised for nodes outside a partition or unroutable endpoint pairs."""


@runtime_checkable
class Topology(Protocol):
    """Structural abstraction of one interconnect partition.

    ``link_disjoint_paths`` advertises a structural contention guarantee to
    the network simulator's array drain: when True, any message set with
    distinct sources and distinct destinations is link-disjoint by
    construction (each node owns its ports into the fabric), so whole
    collective stages can be priced without walking their link sets.  Only
    the crossbar can promise this; wired fabrics are classified dynamically.
    """

    num_nodes: int
    link_disjoint_paths: bool

    @property
    def kind(self) -> str: ...

    def nodes(self) -> Iterable[int]: ...

    def neighbors(self, node: int) -> list[int]: ...

    def route(self, src: int, dst: int) -> list[Hop]: ...

    def hops(self, src: int, dst: int) -> int: ...

    def link_id(self, a: int, b: int) -> Hashable: ...

    def links(self) -> set[Hashable]: ...

    def diameter(self) -> int: ...

    def bisection_links(self) -> int: ...

    def average_distance(self) -> float: ...

    def broadcast_schedule(self, p: int) -> list[Stage]: ...

    def exchange_schedule(self, p: int) -> list[Stage]: ...


# ---------------------------------------------------------------------------
# shared machinery
# ---------------------------------------------------------------------------


class BaseTopology:
    """Generic pieces shared by the concrete topologies."""

    num_nodes: int

    #: Wired fabrics share physical links between node pairs, so stages must
    #: be checked link by link; see :class:`Topology`.
    link_disjoint_paths: bool = False

    @property
    def kind(self) -> str:
        raise NotImplementedError

    def nodes(self) -> range:
        return range(self.num_nodes)

    def _check(self, node: int, role: str = "node") -> None:
        if not 0 <= node < self.num_nodes:
            raise TopologyError(
                f"unroutable {role} {node}: outside the {self.num_nodes}-node "
                f"{self.kind} partition"
            )

    def link_id(self, a: int, b: int) -> Hashable:
        """Canonical (undirected) identifier of the link between *a* and *b*."""
        return (a, b) if a < b else (b, a)

    def links(self) -> set[Hashable]:
        out: set[Hashable] = set()
        for node in self.nodes():
            for other in self.neighbors(node):
                out.add(self.link_id(node, other))
        return out

    def hops(self, src: int, dst: int) -> int:
        return len(self.route(src, dst))

    def average_distance(self) -> float:
        if self.num_nodes <= 1:
            return 0.0
        total = count = 0
        for a in self.nodes():
            for b in self.nodes():
                if a != b:
                    total += self.hops(a, b)
                    count += 1
        return total / count

    def diameter(self) -> int:
        if self.num_nodes <= 1:
            return 0
        return max(self.hops(a, b) for a in self.nodes() for b in self.nodes())

    def bisection_links(self) -> int:
        """Links crossing the label-halving cut of the partition."""
        half = self.num_nodes // 2
        if half == 0:
            return 0
        crossing = 0
        for node in self.nodes():
            for other in self.neighbors(node):
                if node < half <= other:
                    crossing += 1
        return crossing

    # -- collective schedules -------------------------------------------------

    def broadcast_schedule(self, p: int) -> list[Stage]:
        """Binomial broadcast tree over positions 0..p-1 (root at position 0)."""
        stages: list[Stage] = []
        span = 1
        while span < p:
            stage = [(i, i + span) for i in range(span) if i + span < p]
            if stage:
                stages.append(stage)
            span <<= 1
        return stages

    def exchange_schedule(self, p: int) -> list[Stage]:
        """Recursive-doubling pairwise-exchange stages over positions 0..p-1."""
        stages: list[Stage] = []
        span = 1
        while span < p:
            stage = []
            for i in range(p):
                j = i ^ span
                if i < j < p:
                    stage.append((i, j))
            if stage:
                stages.append(stage)
            span <<= 1
        return stages


# ---------------------------------------------------------------------------
# hypercube
# ---------------------------------------------------------------------------


def cube_dimension(num_nodes: int) -> int:
    """Dimension of the smallest hypercube holding *num_nodes* nodes."""
    if num_nodes <= 1:
        return 0
    return int(math.ceil(math.log2(num_nodes)))


def hamming_distance(a: int, b: int) -> int:
    return bin(a ^ b).count("1")


def cube_neighbors(node: int, num_nodes: int) -> list[int]:
    """Hypercube neighbours of *node* that exist in a *num_nodes* partition."""
    dim = cube_dimension(num_nodes)
    out = []
    for d in range(dim):
        other = node ^ (1 << d)
        if other < num_nodes:
            out.append(other)
    return out


def ecube_route(src: int, dst: int) -> list[Hop]:
    """Classic e-cube route from *src* to *dst* (ascending dimension order)."""
    route: list[Hop] = []
    current = src
    diff = src ^ dst
    dim = 0
    while diff:
        if diff & 1:
            nxt = current ^ (1 << dim)
            route.append((current, nxt))
            current = nxt
        diff >>= 1
        dim += 1
    return route


def link_id(a: int, b: int) -> tuple[int, int]:
    """Canonical (undirected) identifier of the link between adjacent nodes."""
    return (a, b) if a < b else (b, a)


@dataclass(frozen=True)
class HypercubeTopology(BaseTopology):
    """A *num_nodes*-node partition of a binary hypercube.

    Non-power-of-two partitions use the first ``num_nodes`` labels of the
    enclosing cube.  Routing is dimension-ordered; when the classic ascending
    e-cube path would pass through a label outside the partition, the route
    falls back to clearing the source's surplus address bits before setting
    the destination's (every intermediate label then stays ≤ max(src, dst),
    hence inside the partition), so ``route`` never visits a missing node.
    """

    num_nodes: int

    @property
    def kind(self) -> str:
        return "hypercube"

    @property
    def dimension(self) -> int:
        return cube_dimension(self.num_nodes)

    def neighbors(self, node: int) -> list[int]:
        self._check(node)
        return cube_neighbors(node, self.num_nodes)

    def hops(self, src: int, dst: int) -> int:
        self._check(src, "source")
        self._check(dst, "destination")
        return hamming_distance(src, dst)

    def route(self, src: int, dst: int) -> list[Hop]:
        self._check(src, "source")
        self._check(dst, "destination")
        route = ecube_route(src, dst)
        if all(b < self.num_nodes for _, b in route):
            return route
        return self._partition_safe_route(src, dst)

    def _partition_safe_route(self, src: int, dst: int) -> list[Hop]:
        """Dimension-ordered route that clears bits before setting them."""
        route: list[Hop] = []
        current = src
        for dim in range(self.dimension):          # clear src-only bits
            bit = 1 << dim
            if current & bit and not dst & bit:
                nxt = current ^ bit
                route.append((current, nxt))
                current = nxt
        for dim in range(self.dimension):          # set dst-only bits
            bit = 1 << dim
            if dst & bit and not current & bit:
                nxt = current ^ bit
                route.append((current, nxt))
                current = nxt
        return route

    def diameter(self) -> int:
        if self.num_nodes <= 1:
            return 0
        return max(hamming_distance(a, b)
                   for a in self.nodes() for b in self.nodes())

    def average_distance(self) -> float:
        if self.num_nodes <= 1:
            return 0.0
        return _hypercube_average_distance(self.num_nodes)

    def rank_to_node(self, rank: int) -> int:
        """Abstract-processor rank → physical node label (identity mapping)."""
        return rank

    def node_to_rank(self, node: int) -> int:
        return node


@lru_cache(maxsize=None)
def _hypercube_average_distance(p: int) -> float:
    """Mean pairwise hop distance of a *p*-node hypercube partition."""
    if p & (p - 1) == 0:           # full cube: closed form
        dim = p.bit_length() - 1
        return dim * p / (2.0 * (p - 1))
    total = sum(hamming_distance(a, b)
                for a in range(p) for b in range(p) if a != b)
    return total / (p * (p - 1))


# ---------------------------------------------------------------------------
# 2-D mesh
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MeshTopology(BaseTopology):
    """A ``rows`` × ``cols`` 2-D mesh (non-toroidal) with XY wormhole routing.

    Node labels are row-major: node ``r * cols + c`` sits at row *r*, column
    *c*.  A message first travels along its row to the destination column,
    then along that column — the deterministic, deadlock-free XY order of the
    Paragon's wormhole routers.  All XY routes are minimal (Manhattan length).
    """

    rows: int
    cols: int

    def __post_init__(self):
        if self.rows < 1 or self.cols < 1:
            raise TopologyError(f"invalid mesh shape {self.rows}x{self.cols}")

    @property
    def num_nodes(self) -> int:  # type: ignore[override]
        return self.rows * self.cols

    @property
    def kind(self) -> str:
        return "mesh"

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    def coords(self, node: int) -> tuple[int, int]:
        self._check(node)
        return divmod(node, self.cols)

    def node_at(self, row: int, col: int) -> int:
        return row * self.cols + col

    def neighbors(self, node: int) -> list[int]:
        row, col = self.coords(node)
        out = []
        if col > 0:
            out.append(self.node_at(row, col - 1))
        if col < self.cols - 1:
            out.append(self.node_at(row, col + 1))
        if row > 0:
            out.append(self.node_at(row - 1, col))
        if row < self.rows - 1:
            out.append(self.node_at(row + 1, col))
        return out

    def hops(self, src: int, dst: int) -> int:
        (r1, c1), (r2, c2) = self.coords(src), self.coords(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    def route(self, src: int, dst: int) -> list[Hop]:
        self._check(src, "source")
        self._check(dst, "destination")
        (row, col), (drow, dcol) = self.coords(src), self.coords(dst)
        route: list[Hop] = []
        current = src
        step = 1 if dcol > col else -1
        while col != dcol:                        # X leg: along the row
            col += step
            nxt = self.node_at(row, col)
            route.append((current, nxt))
            current = nxt
        step = 1 if drow > row else -1
        while row != drow:                        # Y leg: along the column
            row += step
            nxt = self.node_at(row, col)
            route.append((current, nxt))
            current = nxt
        return route

    def diameter(self) -> int:
        return (self.rows - 1) + (self.cols - 1)

    def average_distance(self) -> float:
        n = self.num_nodes
        if n <= 1:
            return 0.0
        # closed form: sum of |Δr| (resp. |Δc|) over all ordered node pairs is
        # cols² · rows(rows²-1)/3 (resp. rows² · cols(cols²-1)/3)
        rows, cols = self.rows, self.cols
        total = (cols * cols * rows * (rows * rows - 1)
                 + rows * rows * cols * (cols * cols - 1)) / 3.0
        return total / (n * (n - 1))

    def bisection_links(self) -> int:
        # cutting the longer dimension in half severs one link per cross line
        if self.cols >= self.rows:
            return self.rows if self.cols > 1 else 0
        return self.cols if self.rows > 1 else 0

    def broadcast_schedule(self, p: int) -> list[Stage]:
        """Row–column tree: binomial along the root's row, then down columns."""
        if p <= 1:
            return []
        rows, cols = (self.rows, self.cols) if p == self.num_nodes \
            else near_square_shape(p)
        stages: list[Stage] = []
        span = 1
        while span < cols:                        # row phase (row 0 only)
            stage = [(c, c + span) for c in range(span)
                     if c + span < cols and c + span < p]
            if stage:
                stages.append(stage)
            span <<= 1
        span = 1
        while span < rows:                        # column phase (all columns)
            stage = []
            for col in range(cols):
                for row in range(span):
                    sender = row * cols + col
                    receiver = (row + span) * cols + col
                    if sender < p and receiver < p:
                        stage.append((sender, receiver))
            if stage:
                stages.append(stage)
            span <<= 1
        return stages


# ---------------------------------------------------------------------------
# 2-D torus
# ---------------------------------------------------------------------------


def ring_distance(a: int, b: int, size: int) -> int:
    """Hop distance between positions *a* and *b* on a *size*-node ring."""
    d = abs(a - b) % size
    return min(d, size - d)


@dataclass(frozen=True)
class TorusTopology(MeshTopology):
    """A ``rows`` × ``cols`` 2-D torus: a mesh whose rows and columns wrap.

    Same row-major labelling and deterministic XY order as the mesh, but every
    row and every column closes into a ring and each leg takes the shorter way
    around its ring, so all routes are minimal.  Degenerate rings (size 1 or 2)
    collapse to the mesh links — wrap links that would duplicate a direct link
    are not doubled.
    """

    @property
    def kind(self) -> str:
        return "torus"

    def neighbors(self, node: int) -> list[int]:
        row, col = self.coords(node)
        out: list[int] = []
        for r, c in ((row, (col - 1) % self.cols), (row, (col + 1) % self.cols),
                     ((row - 1) % self.rows, col), ((row + 1) % self.rows, col)):
            other = self.node_at(r, c)
            if other != node and other not in out:
                out.append(other)
        return out

    def hops(self, src: int, dst: int) -> int:
        (r1, c1), (r2, c2) = self.coords(src), self.coords(dst)
        return ring_distance(r1, r2, self.rows) + ring_distance(c1, c2, self.cols)

    @staticmethod
    def _ring_step(pos: int, dpos: int, size: int) -> int:
        """Signed step (+1/-1) of the shorter way around a *size*-node ring."""
        forward = (dpos - pos) % size
        backward = (pos - dpos) % size
        return 1 if forward <= backward else -1

    def route(self, src: int, dst: int) -> list[Hop]:
        self._check(src, "source")
        self._check(dst, "destination")
        (row, col), (drow, dcol) = self.coords(src), self.coords(dst)
        route: list[Hop] = []
        current = src
        step = self._ring_step(col, dcol, self.cols)
        while col != dcol:                        # X leg: around the row ring
            col = (col + step) % self.cols
            nxt = self.node_at(row, col)
            route.append((current, nxt))
            current = nxt
        step = self._ring_step(row, drow, self.rows)
        while row != drow:                        # Y leg: around the column ring
            row = (row + step) % self.rows
            nxt = self.node_at(row, col)
            route.append((current, nxt))
            current = nxt
        return route

    def diameter(self) -> int:
        return self.rows // 2 + self.cols // 2

    def average_distance(self) -> float:
        n = self.num_nodes
        if n <= 1:
            return 0.0

        def ring_total(size: int) -> int:
            return size * sum(min(d, size - d) for d in range(1, size))

        total = (self.cols * self.cols * ring_total(self.rows)
                 + self.rows * self.rows * ring_total(self.cols))
        return total / (n * (n - 1))

    def bisection_links(self) -> int:
        # the wrap links double the mesh cut (unless they collapse onto the
        # direct links), so count crossings of the label-halving cut directly
        return BaseTopology.bisection_links(self)


# ---------------------------------------------------------------------------
# fat tree
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FatTreeTopology(BaseTopology):
    """A CM-5-class fat tree: compute nodes at the leaves of an *arity*-ary
    switch tree whose link capacity grows toward the root.

    Compute nodes carry labels ``0 .. num_nodes-1``; switches are pseudo-nodes
    with negative labels (one per (level, group, channel) triple).  A message
    climbs to the lowest switch level whose *arity*-ary group contains both
    endpoints and descends again, so the hop count is ``2 * merge_level`` —
    nodes in the same leaf group are 2 hops apart, the diameter is
    ``2 * levels``.

    The "fatness" is modelled the way the CM-5 data network built it: above
    the leaf switches each group connects to multiple *parallel* parent
    switches (channel count doubling per level, capped at
    ``max_channel_width``), and a route picks its channel deterministically
    from ``(src + dst)``.  Disjoint message pairs therefore spread across the
    parallel upper links, which is exactly the contention relief a fat tree
    buys; the network simulator sees it through distinct link ids.

    Collective schedules stay the binomial / recursive-doubling defaults; the
    CM-5's dedicated control network shows up in the machine parameter set
    (cheap barriers), not in the data-network structure.
    """

    num_nodes: int
    arity: int = 4
    max_channel_width: int = 4

    def __post_init__(self):
        if self.num_nodes < 1:
            raise TopologyError(
                f"a fat tree needs at least one node, got {self.num_nodes}")
        if self.arity < 2:
            raise TopologyError(f"fat-tree arity must be >= 2, got {self.arity}")

    @property
    def kind(self) -> str:
        return "fattree"

    @property
    def levels(self) -> int:
        """Switch levels between a leaf and the root (>= 1).

        Computed by integer doubling, not ``math.log`` — float error on exact
        powers (e.g. ``log(125, 5) = 3.0000000000000004``) would overstate
        the level count and desynchronise it from :meth:`merge_level`.
        """
        levels = 1
        capacity = self.arity
        while capacity < self.num_nodes:
            capacity *= self.arity
            levels += 1
        return levels

    def _width(self, level: int) -> int:
        """Parallel switch channels at *level* (1 at the leaves, doubling up)."""
        return min(2 ** (level - 1), self.max_channel_width)

    def _switch(self, level: int, group: int, channel: int) -> int:
        """Negative pseudo-node label of one (level, group, channel) switch."""
        base = 0
        for l in range(1, level):
            groups = -(-self.num_nodes // self.arity ** l)
            base += groups * self._width(l)
        return -(1 + base + group * self._width(level) + channel)

    def merge_level(self, src: int, dst: int) -> int:
        """Lowest switch level whose group contains both endpoints."""
        level = 1
        while src // self.arity ** level != dst // self.arity ** level:
            level += 1
        return level

    def neighbors(self, node: int) -> list[int]:
        """Compute nodes sharing *node*'s leaf switch (the 2-hop peers)."""
        self._check(node)
        group = node // self.arity
        lo = group * self.arity
        hi = min(lo + self.arity, self.num_nodes)
        return [other for other in range(lo, hi) if other != node]

    def hops(self, src: int, dst: int) -> int:
        self._check(src, "source")
        self._check(dst, "destination")
        if src == dst:
            return 0
        return 2 * self.merge_level(src, dst)

    def route(self, src: int, dst: int) -> list[Hop]:
        self._check(src, "source")
        self._check(dst, "destination")
        if src == dst:
            return []
        top = self.merge_level(src, dst)
        channel_seed = src + dst
        path = [src]
        for level in range(1, top + 1):            # climb the source side
            path.append(self._switch(level, src // self.arity ** level,
                                     channel_seed % self._width(level)))
        for level in range(top - 1, 0, -1):        # descend the destination side
            path.append(self._switch(level, dst // self.arity ** level,
                                     channel_seed % self._width(level)))
        path.append(dst)
        return [(path[i], path[i + 1]) for i in range(len(path) - 1)]

    def links(self) -> set[Hashable]:
        out: set[Hashable] = set()
        for a in self.nodes():
            for b in self.nodes():
                if a != b:
                    out.update(self.link_id(x, y) for x, y in self.route(a, b))
        return out

    def diameter(self) -> int:
        if self.num_nodes <= 1:
            return 0
        return 2 * self.merge_level(0, self.num_nodes - 1)

    def average_distance(self) -> float:
        # called on the interpretation hot path (unstructured gathers price
        # their hop count from it), so use the cached closed form rather
        # than BaseTopology's all-pairs walk
        return _fattree_average_distance(self.num_nodes, self.arity)

    def bisection_links(self) -> int:
        """Parallel root-level links available to the label-halving cut."""
        half = self.num_nodes // 2
        if half == 0:
            return 0
        top = self.levels
        if top == 1:
            return half                     # one switch: the cut severs node links
        subtree = self.arity ** (top - 1)
        lower_groups = max(half // subtree, 1)
        return lower_groups * self._width(top)


@lru_cache(maxsize=None)
def _fattree_average_distance(n: int, arity: int) -> float:
    """Mean pairwise hop distance of an *n*-leaf, *arity*-ary fat tree.

    Ordered pairs are binned by merge level: the pairs whose endpoints share
    a level-``l`` group but no level-``l-1`` group are exactly ``2 * l`` hops
    apart.  Same-group pair counts have a closed form per level, so this is
    O(levels) instead of the O(n² log n) all-pairs walk.
    """
    if n <= 1:
        return 0.0

    def same_group_pairs(level: int) -> int:
        size = arity ** level
        full, remainder = divmod(n, size)
        return full * size * (size - 1) + remainder * (remainder - 1)

    total_pairs = n * (n - 1)
    total_hops = 0
    previous = 0                    # same_group_pairs(0): none (a != b)
    level = 1
    while previous < total_pairs:
        current = same_group_pairs(level)
        total_hops += (current - previous) * 2 * level
        previous = current
        level += 1
    return total_hops / total_pairs


# ---------------------------------------------------------------------------
# switched cluster
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SwitchedTopology(BaseTopology):
    """A cluster whose nodes all hang off one central crossbar switch.

    Every node owns a dedicated up-link into the switch and a dedicated
    down-link out of it, so any source-destination pair is exactly
    ``switch_hops`` apart and disjoint pairs never contend inside the fabric
    (contention only arises at a node's own ports).  This models Delta-class
    service networks and switched workstation clusters.  Because the only
    links are per-node ports, any stage with distinct sources and distinct
    destinations is link-disjoint by construction — the topology advertises
    that through ``link_disjoint_paths`` and the network's array drain prices
    such stages with one vectorised expression.
    """

    num_nodes: int
    switch_hops: int = 2
    link_disjoint_paths = True

    @property
    def kind(self) -> str:
        return "switch"

    def neighbors(self, node: int) -> list[int]:
        self._check(node)
        return [other for other in self.nodes() if other != node]

    def hops(self, src: int, dst: int) -> int:
        self._check(src, "source")
        self._check(dst, "destination")
        return 0 if src == dst else self.switch_hops

    def route(self, src: int, dst: int) -> list[Hop]:
        self._check(src, "source")
        self._check(dst, "destination")
        if src == dst:
            return []
        return [(src, SWITCH_NODE), (SWITCH_NODE, dst)]

    def link_id(self, a: int, b: int) -> Hashable:
        if b == SWITCH_NODE:
            return ("up", a)
        if a == SWITCH_NODE:
            return ("down", b)
        return (a, b) if a < b else (b, a)

    def links(self) -> set[Hashable]:
        out: set[Hashable] = set()
        for node in self.nodes():
            out.add(("up", node))
            out.add(("down", node))
        return out

    def diameter(self) -> int:
        return 0 if self.num_nodes <= 1 else self.switch_hops

    def average_distance(self) -> float:
        return 0.0 if self.num_nodes <= 1 else float(self.switch_hops)

    def bisection_links(self) -> int:
        return self.num_nodes // 2


# ---------------------------------------------------------------------------
# factory
# ---------------------------------------------------------------------------


def near_square_shape(p: int) -> tuple[int, int]:
    """Factor *p* into the most nearly square (rows, cols) with rows ≤ cols."""
    p = max(int(p), 1)
    rows = 1
    for candidate in range(int(math.isqrt(p)), 0, -1):
        if p % candidate == 0:
            rows = candidate
            break
    return rows, p // rows


_TOPOLOGY_ALIASES = {
    "hypercube": "hypercube",
    "cube": "hypercube",
    "mesh": "mesh",
    "mesh2d": "mesh",
    "torus": "torus",
    "torus2d": "torus",
    "wrapmesh": "torus",
    "switch": "switch",
    "switched": "switch",
    "crossbar": "switch",
    "fattree": "fattree",
    "fat-tree": "fattree",
    "fat_tree": "fattree",
    "tree": "fattree",
}

#: Topology kinds that accept a (rows, cols) ``shape=`` override.
SHAPED_KINDS = ("mesh", "torus")


def make_topology(kind: str, num_nodes: int, *,
                  shape: tuple[int, int] | None = None,
                  switch_hops: int = 2,
                  arity: int = 4) -> Topology:
    """Build a topology of *kind* over *num_nodes* nodes.

    ``shape`` overrides the near-square factorisation used for meshes and
    tori; a shape whose product is not *num_nodes* raises
    :class:`TopologyError`.  ``arity`` is the switch fan-out of a fat tree.
    """
    if num_nodes < 1:
        raise TopologyError(f"a partition needs at least one node, got {num_nodes}")
    canonical = _TOPOLOGY_ALIASES.get(kind.lower())
    if canonical is None:
        raise TopologyError(
            f"unknown topology kind {kind!r}; known: "
            f"{sorted(set(_TOPOLOGY_ALIASES.values()))}")
    if canonical == "hypercube":
        return HypercubeTopology(num_nodes)
    if canonical in SHAPED_KINDS:
        rows, cols = shape if shape is not None else near_square_shape(num_nodes)
        if rows * cols != num_nodes:
            raise TopologyError(
                f"{canonical} shape {rows}x{cols} does not hold {num_nodes} nodes"
                f" ({rows}*{cols} = {rows * cols})")
        cls = MeshTopology if canonical == "mesh" else TorusTopology
        return cls(rows, cols)
    if canonical == "fattree":
        return FatTreeTopology(num_nodes, arity=arity)
    return SwitchedTopology(num_nodes, switch_hops=switch_hops)
