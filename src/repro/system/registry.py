"""Named registry of target-machine abstractions.

The paper's framework treats the Systems Module as the only machine-specific
part; everything downstream retargets by swapping the SAG/SAU parameter set
and the interconnect topology.  This registry makes that swap a one-word
change: ``get_machine("paragon", 8)`` anywhere a :class:`Machine` is
expected, and ``repro.predict(..., machine="paragon")`` /
``repro.measure(..., machine="cluster")`` for whole-study sweeps.

Built-in machines:

* ``ipsc860`` — 8-node-class Intel iPSC/860 binary hypercube (the paper's
  evaluation target); aliases ``ipsc``, ``hypercube``.
* ``paragon`` — Paragon-class i860 XP nodes on a 2-D wormhole mesh;
  alias ``mesh``.
* ``cluster`` — switched workstation cluster behind a central crossbar;
  aliases ``delta``, ``switch``.
* ``torus-cluster`` — T3D-class nodes on a 2-D wraparound torus;
  aliases ``torus``, ``t3d``.
* ``cm5`` — CM-5-class SPARC nodes on a 4-ary data-network fat tree;
  aliases ``cm-5``, ``fattree``, ``fat-tree``.
* ``modern-cluster`` — GHz-class commodity nodes behind a non-blocking
  switched fabric (the post-CM5 target for p ≥ 64 studies); aliases
  ``modern``, ``commodity``, ``beowulf``.

User code can add its own with :func:`register_machine`.  Machines on shaped
interconnects (mesh, torus) additionally accept a ``topology_shape=(rows,
cols)`` override, the registry-level face of ``make_topology(..., shape=)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .cluster import cluster
from .cm5 import cm5
from .ipsc860 import ipsc860
from .machine import Machine
from .modern_cluster import modern_cluster
from .paragon import paragon
from .topology import SHAPED_KINDS, TopologyError
from .torus_cluster import torus_cluster

MachineFactory = Callable[..., Machine]


@dataclass(frozen=True)
class MachineSpec:
    """One registered machine target."""

    name: str
    factory: MachineFactory
    description: str = ""
    aliases: tuple[str, ...] = ()


_MACHINES: dict[str, MachineSpec] = {}
_ALIASES: dict[str, str] = {}


def register_machine(
    name: str,
    factory: MachineFactory,
    *,
    description: str = "",
    aliases: tuple[str, ...] = (),
) -> None:
    """Register *factory* (``(num_nodes, noise_seed) -> Machine``) under *name*."""
    key = name.lower()
    spec = MachineSpec(name=key, factory=factory,
                       description=description, aliases=tuple(a.lower() for a in aliases))
    _MACHINES[key] = spec
    _ALIASES[key] = key
    for alias in spec.aliases:
        _ALIASES[alias] = key


def machine_names() -> list[str]:
    """Canonical names of every registered machine, sorted."""
    return sorted(_MACHINES)


def machine_specs() -> list[MachineSpec]:
    return [_MACHINES[name] for name in machine_names()]


def canonical_machine_name(name: str) -> str:
    """The canonical registry key for *name* (case/punctuation-insensitive,
    aliases resolved); raises :class:`KeyError` for unknown machines."""
    key = _ALIASES.get(name.lower().replace("/", "").replace("-", "").replace(" ", ""))
    if key is None:
        key = _ALIASES.get(name.lower())
    if key is None:
        raise KeyError(
            f"unknown machine {name!r}; registered: {machine_names()}")
    return key


def get_machine(name: str, nprocs: int = 8, noise_seed: int = 0,
                topology_shape: tuple[int, int] | None = None) -> Machine:
    """Build the registered machine *name* with an *nprocs*-node partition.

    ``topology_shape`` pins the (rows, cols) layout of a shaped interconnect
    (mesh, torus) instead of the near-square default; a shape that does not
    tile *nprocs* nodes, or a shape on an unshaped interconnect, raises
    :class:`~repro.system.topology.TopologyError`.
    """
    key = canonical_machine_name(name)
    machine = _MACHINES[key].factory(nprocs, noise_seed)
    if topology_shape is not None:
        rows, cols = topology_shape
        if machine.topology_kind not in SHAPED_KINDS:
            raise TopologyError(
                f"machine {key!r} has a {machine.topology_kind} interconnect, "
                f"which does not take a (rows, cols) shape")
        if rows * cols != nprocs:
            raise TopologyError(
                f"{machine.topology_kind} shape {rows}x{cols} does not hold "
                f"{nprocs} nodes ({rows}*{cols} = {rows * cols})")
        machine.topology_shape = (rows, cols)
    return machine


def resolve_machine(machine: "Machine | str | None", nprocs: int,
                    noise_seed: int = 0) -> Machine:
    """Accept a Machine instance, a registered name, or None (iPSC/860 default)."""
    if machine is None:
        return get_machine("ipsc860", nprocs, noise_seed)
    if isinstance(machine, str):
        return get_machine(machine, nprocs, noise_seed)
    return machine


# -- built-in machines --------------------------------------------------------

register_machine(
    "ipsc860", ipsc860,
    description="Intel iPSC/860 binary hypercube (Direct-Connect, e-cube routing)",
    aliases=("ipsc", "ipsc/860", "hypercube"),
)
register_machine(
    "paragon", paragon,
    description="Paragon-class i860 XP nodes on a 2-D wormhole mesh (XY routing)",
    aliases=("mesh",),
)
register_machine(
    "cluster", cluster,
    description="switched workstation cluster behind a central crossbar",
    aliases=("delta", "switch"),
)
register_machine(
    "torus-cluster", torus_cluster,
    description="T3D-class nodes on a 2-D wraparound torus (shortest-way XY routing)",
    aliases=("torus", "t3d"),
)
register_machine(
    "cm5", cm5,
    description="CM-5-class SPARC nodes on a 4-ary data-network fat tree "
                "(doubling link capacity, control-network barriers)",
    aliases=("cm-5", "fattree", "fat-tree"),
)
register_machine(
    "modern-cluster", modern_cluster,
    description="GHz-class commodity nodes behind a non-blocking switched "
                "fabric (kernel-bypass messaging, offloaded collectives)",
    aliases=("modern", "commodity", "beowulf"),
)
