"""Named registry of target-machine abstractions.

The paper's framework treats the Systems Module as the only machine-specific
part; everything downstream retargets by swapping the SAG/SAU parameter set
and the interconnect topology.  This registry makes that swap a one-word
change: ``get_machine("paragon", 8)`` anywhere a :class:`Machine` is
expected, and ``repro.predict(..., machine="paragon")`` /
``repro.measure(..., machine="cluster")`` for whole-study sweeps.

Built-in machines:

* ``ipsc860`` — 8-node-class Intel iPSC/860 binary hypercube (the paper's
  evaluation target); aliases ``ipsc``, ``hypercube``.
* ``paragon`` — Paragon-class i860 XP nodes on a 2-D wormhole mesh;
  alias ``mesh``.
* ``cluster`` — switched workstation cluster behind a central crossbar;
  aliases ``delta``, ``switch``.

User code can add its own with :func:`register_machine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .cluster import cluster
from .ipsc860 import ipsc860
from .machine import Machine
from .paragon import paragon

MachineFactory = Callable[..., Machine]


@dataclass(frozen=True)
class MachineSpec:
    """One registered machine target."""

    name: str
    factory: MachineFactory
    description: str = ""
    aliases: tuple[str, ...] = ()


_MACHINES: dict[str, MachineSpec] = {}
_ALIASES: dict[str, str] = {}


def register_machine(
    name: str,
    factory: MachineFactory,
    *,
    description: str = "",
    aliases: tuple[str, ...] = (),
) -> None:
    """Register *factory* (``(num_nodes, noise_seed) -> Machine``) under *name*."""
    key = name.lower()
    spec = MachineSpec(name=key, factory=factory,
                       description=description, aliases=tuple(a.lower() for a in aliases))
    _MACHINES[key] = spec
    _ALIASES[key] = key
    for alias in spec.aliases:
        _ALIASES[alias] = key


def machine_names() -> list[str]:
    """Canonical names of every registered machine, sorted."""
    return sorted(_MACHINES)


def machine_specs() -> list[MachineSpec]:
    return [_MACHINES[name] for name in machine_names()]


def get_machine(name: str, nprocs: int = 8, noise_seed: int = 0) -> Machine:
    """Build the registered machine *name* with an *nprocs*-node partition."""
    key = _ALIASES.get(name.lower().replace("/", "").replace("-", "").replace(" ", ""))
    if key is None:
        key = _ALIASES.get(name.lower())
    if key is None:
        raise KeyError(
            f"unknown machine {name!r}; registered: {machine_names()}")
    return _MACHINES[key].factory(nprocs, noise_seed)


def resolve_machine(machine: "Machine | str | None", nprocs: int,
                    noise_seed: int = 0) -> Machine:
    """Accept a Machine instance, a registered name, or None (iPSC/860 default)."""
    if machine is None:
        return get_machine("ipsc860", nprocs, noise_seed)
    if isinstance(machine, str):
        return get_machine(machine, nprocs, noise_seed)
    return machine


# -- built-in machines --------------------------------------------------------

register_machine(
    "ipsc860", ipsc860,
    description="Intel iPSC/860 binary hypercube (Direct-Connect, e-cube routing)",
    aliases=("ipsc", "ipsc/860", "hypercube"),
)
register_machine(
    "paragon", paragon,
    description="Paragon-class i860 XP nodes on a 2-D wormhole mesh (XY routing)",
    aliases=("mesh",),
)
register_machine(
    "cluster", cluster,
    description="switched workstation cluster behind a central crossbar",
    aliases=("delta", "switch"),
)
