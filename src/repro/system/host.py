"""SRM host characterisation and the experimentation-workflow cost model.

Two things live here:

* the abstraction of the iPSC/860 front end (SRM) and of the Sparcstation 1+
  workstation on which the interpretive framework itself runs, and
* the workflow model used by the usability experiment (Figure 8): measuring an
  application variant on the real machine means edit → cross-compile → transfer
  to the SRM → load onto the cube → run (repeated per experiment instance),
  whereas interpretation means edit → interpret on the workstation.

All workflow times are in **seconds** (they are minutes-scale quantities).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MeasurementWorkflow:
    """Per-step costs of obtaining one measured data point on the iPSC/860."""

    edit_time_s: float = 120.0           # editing directives / sizes
    cross_compile_time_s: float = 210.0  # HPF compile + f77 cross-compile + link
    transfer_time_s: float = 95.0        # move executable to the SRM
    load_time_s: float = 60.0            # getcube / load onto the i860 nodes
    queue_wait_s: float = 240.0          # shared-resource wait (cube occupied)
    run_overhead_s: float = 20.0         # per-run harness overhead

    def time_per_configuration(self, runs: int, run_time_s: float,
                               include_queue: bool = True) -> float:
        """Wall-clock seconds to measure one (directive, size, procs) configuration."""
        fixed = (
            self.edit_time_s
            + self.cross_compile_time_s
            + self.transfer_time_s
            + self.load_time_s
            + (self.queue_wait_s if include_queue else 0.0)
        )
        return fixed + runs * (self.run_overhead_s + run_time_s)


@dataclass(frozen=True)
class InterpretationWorkflow:
    """Per-step costs of obtaining one interpreted data point on a workstation."""

    edit_time_s: float = 120.0           # same source edit as the measured path
    interpretation_overhead_s: float = 90.0   # abstraction + interpretation parses
    per_variation_s: float = 25.0        # changing parameters from the GUI

    def time_per_configuration(self, variations: int = 1,
                               interpret_time_s: float = 0.0) -> float:
        return (
            self.edit_time_s
            + self.interpretation_overhead_s
            + variations * (self.per_variation_s + interpret_time_s)
        )


@dataclass
class ExperimentationCostModel:
    """Compares the two experimentation workflows for a set of configurations."""

    measurement: MeasurementWorkflow = field(default_factory=MeasurementWorkflow)
    interpretation: InterpretationWorkflow = field(default_factory=InterpretationWorkflow)

    def measured_minutes(self, configurations: int, runs_per_config: int,
                         avg_run_time_s: float, include_queue: bool = True) -> float:
        total = sum(
            self.measurement.time_per_configuration(runs_per_config, avg_run_time_s,
                                                    include_queue)
            for _ in range(configurations)
        )
        return total / 60.0

    def interpreted_minutes(self, configurations: int,
                            interpret_time_s: float = 0.0) -> float:
        total = sum(
            self.interpretation.time_per_configuration(1, interpret_time_s)
            for _ in range(configurations)
        )
        return total / 60.0
