"""Analytic communication cost models, parameterised by interconnect topology.

These are the C/S parameters "exported" by the partition SAU in functional
form: point-to-point message time and the collective algorithms of the
HPF/Fortran 90D run-time library, parameterised by the benchmarked latency /
bandwidth / per-hop constants of
:class:`~repro.system.sau.CommunicationComponent` **and** by the structural
:class:`~repro.system.topology.Topology` of the target machine.

Each collective cost is computed from the *schedule* the topology exports
(recursive doubling on the hypercube and the switch, row–column trees on the
mesh): the cost of a stage is the worst uncontended point-to-point time of
its pairs, at that pair's actual hop distance.  When no topology is given,
the formulas fall back to the hypercube's structure (one-hop stages), which
reproduces the original iPSC/860-only models exactly.

The same schedules drive the simulator's collective layer (per simulated
operation), so any systematic difference between estimate and measurement
comes from *dynamic* effects (actual sizes, contention, imbalance, jitter)
rather than from two unrelated analytic models.

Degenerate inputs are explicitly guarded: single-node collectives and
zero-byte payloads cost nothing, negative sizes and hop counts are clamped.
"""

from __future__ import annotations

import math

from .sau import CommunicationComponent
from .topology import Stage, Topology, make_topology


def message_packets(comm: CommunicationComponent, nbytes: int) -> int:
    """Number of hardware packets a message of *nbytes* occupies."""
    if nbytes <= 0:
        return 1
    return -(-nbytes // comm.packetization_bytes)


def p2p_time(comm: CommunicationComponent, nbytes: int, hops: int = 1) -> float:
    """Time (µs) for one point-to-point message of *nbytes* across *hops* links."""
    nbytes = max(int(nbytes), 0)
    hops = max(int(hops), 1)
    startup = comm.latency(nbytes)
    packets = message_packets(comm, nbytes)
    return (
        startup
        + nbytes * comm.per_byte
        + (hops - 1) * comm.per_hop
        + (packets - 1) * comm.per_packet_overhead
    )


def average_hypercube_hops(p: int) -> float:
    """Average hop distance between two random nodes of a p-node hypercube."""
    if p <= 1:
        return 1.0
    dim = max(int(round(math.log2(p))), 1)
    return max(dim / 2.0, 1.0)


def hypercube_dim(p: int) -> int:
    if p <= 1:
        return 0
    return int(math.ceil(math.log2(p)))


# ---------------------------------------------------------------------------
# schedule helpers
# ---------------------------------------------------------------------------


def _stage_hops(topology: Topology | None, schedule_kind: str, p: int) -> list[int]:
    """Worst-case hop distance of each stage of a collective on *topology*.

    ``schedule_kind`` selects the broadcast tree or the pairwise-exchange
    schedule.  Without a topology the hypercube structure is assumed: one
    one-hop stage per doubling (the original iPSC/860 model).

    Schedule entries are *positions* in the collective's rank list, not
    physical node labels, so when only ``p`` of the topology's nodes take
    part the stages are priced on a same-kind partition of exactly ``p``
    nodes (where positions and labels coincide) rather than on the full
    fabric.
    """
    if p <= 1:
        return []
    if topology is None:
        return [1] * hypercube_dim(p)
    if topology.num_nodes != p:
        topology = make_topology(topology.kind, p)
    schedule: list[Stage] = (
        topology.broadcast_schedule(p) if schedule_kind == "broadcast"
        else topology.exchange_schedule(p)
    )
    out: list[int] = []
    for stage in schedule:
        if stage:
            out.append(max(topology.hops(a, b) for a, b in stage))
    return out


# ---------------------------------------------------------------------------
# point-to-point patterns
# ---------------------------------------------------------------------------


def shift_exchange_time(comm: CommunicationComponent, nbytes: int, hops: int = 1) -> float:
    """Nearest-neighbour boundary exchange (simultaneous send + receive).

    The network hardware allows the send and the matching receive to be
    largely overlapped, but the node CPU pays both protocol startups.
    """
    transit = p2p_time(comm, nbytes, hops)
    return transit + 0.5 * comm.latency(nbytes)


# ---------------------------------------------------------------------------
# collectives
# ---------------------------------------------------------------------------


def broadcast_time(
    comm: CommunicationComponent, nbytes: int, p: int,
    topology: Topology | None = None,
) -> float:
    """Tree broadcast to *p* nodes over the topology's broadcast schedule."""
    nbytes = max(int(nbytes), 0)
    if p <= 1 or nbytes <= 0:
        return 0.0
    stage_hops = _stage_hops(topology, "broadcast", p)
    return comm.collective_call_overhead + sum(
        p2p_time(comm, nbytes, hops=h) for h in stage_hops)


def reduce_time(
    comm: CommunicationComponent, nbytes: int, p: int,
    combine_time_per_stage: float = 0.5,
    topology: Topology | None = None,
) -> float:
    """Tree reduction of *nbytes* (usually one scalar) over *p* nodes."""
    nbytes = max(int(nbytes), 0)
    if p <= 1 or nbytes <= 0:
        return 0.0
    stage_hops = _stage_hops(topology, "broadcast", p)
    return comm.collective_call_overhead + sum(
        p2p_time(comm, nbytes, hops=h) + combine_time_per_stage for h in stage_hops)


def allreduce_time(
    comm: CommunicationComponent, nbytes: int, p: int,
    combine_time_per_stage: float = 0.5,
    topology: Topology | None = None,
) -> float:
    """Reduce-to-all (the HPF intrinsic library returns the result on every node)."""
    nbytes = max(int(nbytes), 0)
    if p <= 1 or nbytes <= 0:
        return 0.0
    stage_hops = _stage_hops(topology, "exchange", p)
    return comm.collective_call_overhead + sum(
        p2p_time(comm, nbytes, hops=h) + combine_time_per_stage for h in stage_hops)


def allgather_time(
    comm: CommunicationComponent, nbytes_per_proc: int, p: int,
    topology: Topology | None = None,
) -> float:
    """Recursive-doubling allgather: each node ends with every node's block."""
    block = max(int(nbytes_per_proc), 0)
    if p <= 1 or block <= 0:
        return 0.0
    total = comm.collective_call_overhead
    for stage, hops in enumerate(_stage_hops(topology, "exchange", p)):
        total += p2p_time(comm, block * (2 ** stage), hops=hops)
    return total


def gather_time(
    comm: CommunicationComponent, nbytes_per_proc: int, p: int,
    topology: Topology | None = None,
) -> float:
    """Gather to one node (tree algorithm); cost observed by the root."""
    block = max(int(nbytes_per_proc), 0)
    if p <= 1 or block <= 0:
        return 0.0
    total = comm.collective_call_overhead
    for stage, hops in enumerate(_stage_hops(topology, "broadcast", p)):
        total += p2p_time(comm, block * (2 ** stage), hops=hops)
    return total


def scatter_time(
    comm: CommunicationComponent, nbytes_per_proc: int, p: int,
    topology: Topology | None = None,
) -> float:
    """Scatter from one node; same tree as gather run in reverse."""
    return gather_time(comm, nbytes_per_proc, p, topology=topology)


def barrier_time(
    comm: CommunicationComponent, p: int,
    topology: Topology | None = None,
) -> float:
    """Dissemination barrier over *p* nodes."""
    if p <= 1:
        return 0.0
    if topology is None:
        stages = hypercube_dim(p)
    else:
        stages = len(_stage_hops(topology, "exchange", p)) or hypercube_dim(p)
    return stages * comm.barrier_per_stage


def unstructured_gather_time(
    comm: CommunicationComponent, nbytes_per_proc: int, p: int,
    hops: float | None = None,
    topology: Topology | None = None,
) -> float:
    """General gather of off-processor data (the GATHER_DATA runtime call).

    Modelled as each node exchanging one block with every other node involved
    in the communication pattern — the worst of the runtime library's
    unstructured patterns — serialised at the node interface.
    """
    block = max(int(nbytes_per_proc), 0)
    if p <= 1 or block <= 0:
        return 0.0
    if hops is None:
        if topology is not None and topology.num_nodes > 1:
            hops = max(topology.average_distance(), 1.0)
        else:
            hops = average_hypercube_hops(p)
    hops = max(float(hops), 1.0)
    peers = max(p - 1, 1)
    # The runtime packs all destinations into at most log2(p) bulk messages.
    stages = hypercube_dim(p)
    per_stage_bytes = block * peers / max(stages, 1)
    return comm.collective_call_overhead + stages * p2p_time(
        comm, int(per_stage_bytes), hops=int(round(hops))
    )
