"""Analytic communication cost models for the iPSC/860 interconnect.

These are the C/S parameters "exported" by the cube SAU in functional form:
point-to-point message time and the hypercube collective algorithms used by
the HPF/Fortran 90D run-time library (recursive-doubling broadcast, reduce,
allgather), parameterised by the benchmarked latency / bandwidth / per-hop
constants of :class:`~repro.system.sau.CommunicationComponent`.

The same formulas are used by the interpretation engine (statically) and by
the simulator's collective layer (per simulated operation), so any systematic
difference between estimate and measurement comes from *dynamic* effects
(actual sizes, contention, imbalance, jitter) rather than from two unrelated
analytic models.
"""

from __future__ import annotations

import math

from .sau import CommunicationComponent


def message_packets(comm: CommunicationComponent, nbytes: int) -> int:
    """Number of hardware packets a message of *nbytes* occupies."""
    if nbytes <= 0:
        return 1
    return -(-nbytes // comm.packetization_bytes)


def p2p_time(comm: CommunicationComponent, nbytes: int, hops: int = 1) -> float:
    """Time (µs) for one point-to-point message of *nbytes* across *hops* links."""
    nbytes = max(int(nbytes), 0)
    hops = max(int(hops), 1)
    startup = comm.latency(nbytes)
    packets = message_packets(comm, nbytes)
    return (
        startup
        + nbytes * comm.per_byte
        + (hops - 1) * comm.per_hop
        + (packets - 1) * comm.per_packet_overhead
    )


def average_hypercube_hops(p: int) -> float:
    """Average hop distance between two random nodes of a p-node hypercube."""
    if p <= 1:
        return 1.0
    dim = max(int(round(math.log2(p))), 1)
    return max(dim / 2.0, 1.0)


def hypercube_dim(p: int) -> int:
    if p <= 1:
        return 0
    return int(math.ceil(math.log2(p)))


def shift_exchange_time(comm: CommunicationComponent, nbytes: int, hops: int = 1) -> float:
    """Nearest-neighbour boundary exchange (simultaneous send + receive).

    The Direct-Connect hardware allows the send and the matching receive to be
    largely overlapped, but the node CPU pays both protocol startups.
    """
    transit = p2p_time(comm, nbytes, hops)
    return transit + 0.5 * comm.latency(nbytes)


def broadcast_time(comm: CommunicationComponent, nbytes: int, p: int) -> float:
    """Recursive-doubling broadcast to *p* nodes."""
    if p <= 1:
        return 0.0
    stages = hypercube_dim(p)
    return comm.collective_call_overhead + stages * p2p_time(comm, nbytes, hops=1)


def reduce_time(
    comm: CommunicationComponent, nbytes: int, p: int, combine_time_per_stage: float = 0.5
) -> float:
    """Recursive-halving reduction of *nbytes* (usually one scalar) over *p* nodes."""
    if p <= 1:
        return 0.0
    stages = hypercube_dim(p)
    return comm.collective_call_overhead + stages * (
        p2p_time(comm, nbytes, hops=1) + combine_time_per_stage
    )


def allreduce_time(
    comm: CommunicationComponent, nbytes: int, p: int, combine_time_per_stage: float = 0.5
) -> float:
    """Reduce-to-all (the HPF intrinsic library returns the result on every node)."""
    if p <= 1:
        return 0.0
    stages = hypercube_dim(p)
    return comm.collective_call_overhead + stages * (
        p2p_time(comm, nbytes, hops=1) + combine_time_per_stage
    )


def allgather_time(comm: CommunicationComponent, nbytes_per_proc: int, p: int) -> float:
    """Recursive-doubling allgather: each node ends with every node's block."""
    if p <= 1:
        return 0.0
    total = comm.collective_call_overhead
    block = max(int(nbytes_per_proc), 0)
    for stage in range(hypercube_dim(p)):
        total += p2p_time(comm, block * (2 ** stage), hops=1)
    return total


def gather_time(comm: CommunicationComponent, nbytes_per_proc: int, p: int) -> float:
    """Gather to one node (tree algorithm); cost observed by the root."""
    if p <= 1:
        return 0.0
    total = comm.collective_call_overhead
    block = max(int(nbytes_per_proc), 0)
    for stage in range(hypercube_dim(p)):
        total += p2p_time(comm, block * (2 ** stage), hops=1)
    return total


def scatter_time(comm: CommunicationComponent, nbytes_per_proc: int, p: int) -> float:
    """Scatter from one node; same tree as gather run in reverse."""
    return gather_time(comm, nbytes_per_proc, p)


def barrier_time(comm: CommunicationComponent, p: int) -> float:
    """Dissemination barrier over *p* nodes."""
    if p <= 1:
        return 0.0
    return hypercube_dim(p) * comm.barrier_per_stage


def unstructured_gather_time(
    comm: CommunicationComponent, nbytes_per_proc: int, p: int, hops: float | None = None
) -> float:
    """General gather of off-processor data (the GATHER_DATA runtime call).

    Modelled as each node exchanging one block with every other node involved
    in the communication pattern — the worst of the runtime library's
    unstructured patterns — serialised at the node interface.
    """
    if p <= 1:
        return 0.0
    hop = hops if hops is not None else average_hypercube_hops(p)
    block = max(int(nbytes_per_proc), 0)
    peers = max(p - 1, 1)
    # The runtime packs all destinations into at most log2(p) bulk messages.
    stages = hypercube_dim(p)
    per_stage_bytes = block * peers / max(stages, 1)
    return comm.collective_call_overhead + stages * p2p_time(
        comm, int(per_stage_bytes), hops=int(round(hop))
    )
