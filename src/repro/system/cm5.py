"""Off-line abstraction of a CM-5-class fat-tree multicomputer.

The fifth machine target of the registry: a Thinking Machines CM-5-style
system — 33 MHz SPARC compute nodes with vector units, hanging off the leaves
of a 4-ary data-network fat tree whose link capacity doubles toward the root
(:class:`~repro.system.topology.FatTreeTopology`).  The parameter set follows
the same off-line methodology as the other targets (vendor specifications +
instruction counts + benchmarking-style constants); as there, the
*relationships* between the numbers define the machine class:

* data network: moderate per-link bandwidth (~10 MB/s sustained per node
  port) but *parallel* upper links, so the fat tree loses far less to
  contention than the mesh or the single crossbar as traffic scales,
* a dedicated control network for synchronisation and small combines —
  barriers are by far the cheapest of the registry (``barrier_per_stage``
  and ``collective_call_overhead`` reflect it),
* SPARC scalar nodes are slower than the i860s at straight-line flops, but
  the vector units close most of the gap on the stride-1 loop nests the
  suite compiles to, and the caches are large (64 KB) and write-back.
"""

from __future__ import annotations

from .machine import Machine
from .sag import SAG
from .sau import (
    SAU,
    CommunicationComponent,
    IOComponent,
    MemoryComponent,
    ProcessingComponent,
)

# Node-level components -------------------------------------------------------

SPARC_PROCESSING = ProcessingComponent(
    clock_mhz=33.0,
    flop_time_sp=0.090,          # vector units on stride-1 work
    flop_time_dp=0.130,
    divide_time=0.75,
    int_op_time=0.040,
    branch_time=0.10,
    loop_iteration_overhead=0.16,
    loop_startup_overhead=1.4,
    conditional_overhead=0.20,
    call_overhead=1.2,
    assignment_overhead=0.045,
    peak_mflops_sp=128.0,
    peak_mflops_dp=64.0,
)

SPARC_MEMORY = MemoryComponent(
    icache_kbytes=64.0,
    dcache_kbytes=64.0,
    main_memory_mbytes=32.0,
    cache_line_bytes=32,
    hit_time=0.030,
    miss_penalty=0.50,
    write_through_penalty=0.0,   # write-back caches
    memory_bandwidth_mbs=100.0,
)

FAT_TREE_COMMUNICATION = CommunicationComponent(
    startup_latency=64.0,        # CMMD-class send/receive software path
    long_startup_latency=120.0,
    long_message_threshold=512,
    per_byte=0.10,               # ~10 MB/s sustained per node port
    per_hop=0.5,                 # pipelined fat-tree router pass-through
    packetization_bytes=1024,
    per_packet_overhead=4.0,
    barrier_per_stage=6.0,       # dedicated control network
    collective_call_overhead=12.0,
)

CM5_NODE_IO = IOComponent(open_close_time=10000.0, per_byte=0.5, seek_time=15000.0)


def build_cm5_sag(num_nodes: int = 8) -> SAG:
    """Build the SAG for a CM-5-class fat-tree partition of *num_nodes* nodes."""
    if num_nodes < 1:
        raise ValueError("a fat-tree partition needs at least one node")

    root = SAU(
        name="system",
        level="system",
        description=f"CM-5-class fat-tree system ({num_nodes} nodes)",
        processing=SPARC_PROCESSING,
        memory=SPARC_MEMORY,
        communication=FAT_TREE_COMMUNICATION,
        io=CM5_NODE_IO,
    )

    tree = SAU(
        name="fattree",
        level="cluster",
        description=f"{num_nodes}-node SPARC partition (4-ary data-network fat "
                    "tree, doubling link capacity, control-network barriers)",
        processing=SPARC_PROCESSING,
        memory=SPARC_MEMORY,
        communication=FAT_TREE_COMMUNICATION,
        io=CM5_NODE_IO,
        attributes={"num_nodes": float(num_nodes)},
    )
    root.add_child(tree)

    node = SAU(
        name="node",
        level="node",
        description="33 MHz SPARC node with vector units: 64 KB caches, 32 MB memory",
        processing=SPARC_PROCESSING,
        memory=SPARC_MEMORY,
        communication=FAT_TREE_COMMUNICATION,
        io=CM5_NODE_IO,
    )
    tree.add_child(node)

    return SAG(root=root, machine_name=f"CM5-{num_nodes}")


def cm5(num_nodes: int = 8, noise_seed: int = 0) -> Machine:
    """A CM-5-class fat-tree partition with *num_nodes* compute nodes."""
    sag = build_cm5_sag(num_nodes)
    return Machine(name=sag.machine_name, sag=sag, num_nodes=num_nodes,
                   noise_seed=noise_seed, topology_kind="fattree")
