"""System Abstraction Units (SAUs) and their four components.

§3.1 of the paper: *"The systems module abstracts a HPC system by
hierarchically decomposing it to form a rooted tree structure called the
System Abstraction Graph (SAG).  Each node of the SAG is a System Abstraction
Unit (SAU) which abstracts a part of the HPC system into a set of parameters
representing its performance.  A SAU is composed of 4 components: (1)
Processing Component (P), (2) Memory Component (M), (3) Communication/
Synchronization Component (C/S), and (4) Input/Output Component (I/O)."*

All times are in **microseconds** (the natural unit on the iPSC/860, whose
message latencies are tens of microseconds and whose flops are fractions of a
microsecond).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class ProcessingComponent:
    """Parameters of the processing element (the i860 node CPU, or the SRM host)."""

    clock_mhz: float = 40.0
    # effective per-operation times for compiled Fortran 77 node code (µs)
    flop_time_sp: float = 0.105          # single-precision add/mul
    flop_time_dp: float = 0.175          # double-precision add/mul
    divide_time: float = 0.90            # floating divide (not pipelined on i860)
    int_op_time: float = 0.045           # integer ALU op / index arithmetic
    branch_time: float = 0.12            # taken-branch / compare overhead
    loop_iteration_overhead: float = 0.18  # per-iteration counter+branch cost
    loop_startup_overhead: float = 1.6     # loop preamble (bounds, registers)
    conditional_overhead: float = 0.22     # IF guard evaluation overhead
    call_overhead: float = 1.4             # subroutine call/return
    assignment_overhead: float = 0.05      # store scheduling slot
    peak_mflops_sp: float = 80.0
    peak_mflops_dp: float = 40.0

    def flop_time(self, precision: str = "real") -> float:
        return self.flop_time_dp if precision == "double" else self.flop_time_sp


@dataclass(frozen=True)
class MemoryComponent:
    """Parameters of one level of the memory subsystem seen by a processing element."""

    icache_kbytes: float = 4.0
    dcache_kbytes: float = 8.0
    main_memory_mbytes: float = 8.0
    cache_line_bytes: int = 32
    hit_time: float = 0.025              # cached access (µs)
    miss_penalty: float = 0.55           # main-memory access penalty (µs)
    write_through_penalty: float = 0.10  # store buffer stall
    memory_bandwidth_mbs: float = 60.0   # streaming bandwidth to main memory
    page_size_bytes: int = 4096

    @property
    def dcache_bytes(self) -> float:
        return self.dcache_kbytes * 1024.0

    def access_time(self, hit_ratio: float) -> float:
        """Average access time for a given cache hit ratio."""
        hit_ratio = min(max(hit_ratio, 0.0), 1.0)
        return hit_ratio * self.hit_time + (1.0 - hit_ratio) * self.miss_penalty


@dataclass(frozen=True)
class CommunicationComponent:
    """Parameters of the communication / synchronisation subsystem (C/S)."""

    # point-to-point (Direct-Connect Module of the iPSC/860)
    startup_latency: float = 75.0        # short-message latency (µs)
    long_startup_latency: float = 160.0  # long-message (> threshold) protocol startup
    long_message_threshold: int = 100    # bytes; iPSC/860 switches protocol at 100 B
    per_byte: float = 0.36               # 1 / bandwidth  (µs per byte  ≈ 2.8 MB/s)
    per_hop: float = 10.5                # additional per-hop latency (µs)
    packetization_bytes: int = 1024      # hardware packet size
    per_packet_overhead: float = 8.0     # per-packet handling (µs)
    # synchronisation
    barrier_per_stage: float = 90.0      # cost of one stage of a log2(P) barrier
    # collective library software overhead per invocation
    collective_call_overhead: float = 30.0

    def latency(self, nbytes: int) -> float:
        """Protocol startup latency for a message of *nbytes*."""
        if nbytes > self.long_message_threshold:
            return self.long_startup_latency
        return self.startup_latency


@dataclass(frozen=True)
class IOComponent:
    """Parameters of the input/output subsystem (host filesystem / CFS)."""

    open_close_time: float = 12000.0     # µs
    per_byte: float = 1.1                # µs per byte (≈ 0.9 MB/s to the SRM disk)
    seek_time: float = 18000.0


@dataclass
class SAU:
    """One System Abstraction Unit: a named part of the machine plus its 4 components."""

    name: str
    level: str = "node"                  # 'system' | 'cluster' | 'host' | 'node'
    processing: ProcessingComponent = field(default_factory=ProcessingComponent)
    memory: MemoryComponent = field(default_factory=MemoryComponent)
    communication: CommunicationComponent = field(default_factory=CommunicationComponent)
    io: IOComponent = field(default_factory=IOComponent)
    description: str = ""
    children: list["SAU"] = field(default_factory=list)
    attributes: dict[str, float] = field(default_factory=dict)

    def add_child(self, child: "SAU") -> "SAU":
        self.children.append(child)
        return child

    def find(self, name: str) -> Optional["SAU"]:
        """Depth-first search for a SAU by name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def leaf_count(self) -> int:
        if not self.children:
            return 1
        return sum(child.leaf_count() for child in self.children)

    def with_processing(self, **changes) -> "SAU":
        """Return a copy of this SAU with modified processing parameters
        (used for user experimentation with system parameters, §3.3)."""
        clone = SAU(
            name=self.name, level=self.level,
            processing=replace(self.processing, **changes),
            memory=self.memory, communication=self.communication, io=self.io,
            description=self.description, children=list(self.children),
            attributes=dict(self.attributes),
        )
        return clone

    def with_communication(self, **changes) -> "SAU":
        clone = SAU(
            name=self.name, level=self.level,
            processing=self.processing,
            memory=self.memory,
            communication=replace(self.communication, **changes),
            io=self.io,
            description=self.description, children=list(self.children),
            attributes=dict(self.attributes),
        )
        return clone

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}{self.level.upper()} SAU '{self.name}': {self.description}"]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)
