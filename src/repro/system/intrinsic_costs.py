"""Benchmark-style parameterisation of the HPF parallel intrinsic library.

§4.4: *"Benchmarking runs were also used to parameterize the HPF parallel
intrinsic library.  The intrinsics included circular shift (cshift), shift to
temporary (tshift), global sum operation (sum), global product operation
(product), and the maxloc operation"*.

Each function below returns the time (µs) the library call costs one node,
combining the local per-element work (processing component) with the
collective communication (C/S component of the cube SAU).
"""

from __future__ import annotations

from .comm_models import allreduce_time, shift_exchange_time
from .sau import CommunicationComponent, ProcessingComponent
from .topology import Topology


def cshift_cost(
    proc: ProcessingComponent,
    comm: CommunicationComponent,
    local_elements: float,
    boundary_elements: float,
    element_size: int,
    nprocs_along_axis: int,
    precision: str = "real",
) -> float:
    """Circular shift of a distributed array along one axis.

    ``local_elements`` is the per-node block size (the local copy cost);
    ``boundary_elements`` is the slab that actually crosses a processor
    boundary.
    """
    copy_time = local_elements * (
        proc.assignment_overhead + 2 * 0.5 * proc.flop_time(precision)
    )
    if nprocs_along_axis <= 1:
        return copy_time
    exchange = shift_exchange_time(comm, int(boundary_elements * element_size))
    pack = boundary_elements * proc.int_op_time * 2.0
    return copy_time + exchange + pack


def tshift_cost(
    proc: ProcessingComponent,
    comm: CommunicationComponent,
    local_elements: float,
    boundary_elements: float,
    element_size: int,
    nprocs_along_axis: int,
    precision: str = "real",
) -> float:
    """Shift-to-temporary: identical traffic to cshift, written to a fresh array."""
    return cshift_cost(
        proc, comm, local_elements, boundary_elements, element_size,
        nprocs_along_axis, precision,
    ) + local_elements * proc.assignment_overhead * 0.5


def reduction_cost(
    proc: ProcessingComponent,
    comm: CommunicationComponent,
    local_elements: float,
    nprocs: int,
    op: str = "sum",
    precision: str = "real",
    element_size: int = 4,
    topology: Topology | None = None,
) -> float:
    """Global sum / product / max / min / maxloc of a distributed array."""
    per_element = proc.flop_time(precision) + proc.loop_iteration_overhead
    if op in ("maxloc", "minloc"):
        per_element += proc.branch_time + proc.int_op_time
    elif op in ("max", "min", "any", "all", "count"):
        per_element = proc.branch_time + proc.loop_iteration_overhead
    local = proc.loop_startup_overhead + local_elements * per_element
    payload = element_size if op not in ("maxloc", "minloc") else element_size + 4
    combine = allreduce_time(comm, payload, nprocs,
                             combine_time_per_stage=proc.flop_time(precision),
                             topology=topology)
    return local + combine


def sum_cost(proc, comm, local_elements, nprocs, precision="real", element_size=4,
             topology=None) -> float:
    return reduction_cost(proc, comm, local_elements, nprocs, "sum", precision,
                          element_size, topology)


def product_cost(proc, comm, local_elements, nprocs, precision="real", element_size=4,
                 topology=None) -> float:
    return reduction_cost(proc, comm, local_elements, nprocs, "product", precision,
                          element_size, topology)


def maxloc_cost(proc, comm, local_elements, nprocs, precision="real", element_size=4,
                topology=None) -> float:
    return reduction_cost(proc, comm, local_elements, nprocs, "maxloc", precision,
                          element_size, topology)
