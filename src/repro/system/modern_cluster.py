"""Off-line abstraction of a modern commodity cluster (the post-CM5 target).

The sixth machine target of the registry, and the regime the scaled
simulator core exists for: hundreds of GHz-class superscalar nodes behind a
non-blocking switched fabric — the commodity successor of the machines the
paper characterised.  The parameter set follows the same off-line
methodology as the other targets (vendor specifications + instruction
counts + benchmarking-style constants); as always, the *relationships*
between the numbers define the machine class:

* node flops two orders of magnitude past the i860s (GHz clock, fused
  multiply-add pipelines), with large write-back caches, so local compute
  almost vanishes relative to the historical targets and communication
  structure dominates design choices at scale,
* user-level messaging (kernel-bypass NICs): single-digit-µs startup — an
  order of magnitude below even the T3D-class torus — and ~GB/s-class
  per-port bandwidth,
* a central non-blocking crossbar fabric (every node one switch crossing
  apart, disjoint pairs never contend inside the fabric), the structure of
  a folded-Clos/fat-tree datacenter network seen from the endpoints,
* cheap hardware-offloaded collectives (low per-stage barrier cost and
  collective-call overhead).

Typical partitions are p ∈ {64, 128, 256}; the scale benchmark
(``benchmarks/test_bench_simulator_scale.py``) demonstrates the vector
engine's wall-clock advantage on exactly this target.
"""

from __future__ import annotations

from .machine import Machine
from .sag import SAG
from .sau import (
    SAU,
    CommunicationComponent,
    IOComponent,
    MemoryComponent,
    ProcessingComponent,
)

# Node-level components -------------------------------------------------------

MODERN_PROCESSING = ProcessingComponent(
    clock_mhz=2000.0,
    flop_time_sp=0.0008,         # ~2.5 GFLOPS sustained scalar+SIMD
    flop_time_dp=0.0012,
    divide_time=0.012,
    int_op_time=0.0005,
    branch_time=0.0015,
    loop_iteration_overhead=0.002,
    loop_startup_overhead=0.05,
    conditional_overhead=0.004,
    call_overhead=0.03,
    assignment_overhead=0.001,
    peak_mflops_sp=4000.0,
    peak_mflops_dp=2000.0,
)

MODERN_MEMORY = MemoryComponent(
    icache_kbytes=512.0,
    dcache_kbytes=512.0,         # private L2-class capacity per core
    main_memory_mbytes=4096.0,
    cache_line_bytes=64,
    hit_time=0.001,
    miss_penalty=0.08,
    write_through_penalty=0.0,   # write-back hierarchies
    memory_bandwidth_mbs=6000.0,
)

MODERN_COMMUNICATION = CommunicationComponent(
    startup_latency=3.0,         # kernel-bypass send/receive path
    long_startup_latency=6.0,
    long_message_threshold=8192,
    per_byte=0.001,              # ~1 GB/s sustained per node port
    per_hop=0.3,                 # switch traversal
    packetization_bytes=8192,
    per_packet_overhead=0.6,
    barrier_per_stage=2.0,       # offloaded collective engine
    collective_call_overhead=4.0,
)

MODERN_NODE_IO = IOComponent(open_close_time=2000.0, per_byte=0.01, seek_time=4000.0)


def build_modern_cluster_sag(num_nodes: int = 64) -> SAG:
    """Build the SAG for a modern-cluster partition of *num_nodes* nodes."""
    if num_nodes < 1:
        raise ValueError("a cluster partition needs at least one node")

    root = SAU(
        name="system",
        level="system",
        description=f"modern commodity cluster ({num_nodes} nodes)",
        processing=MODERN_PROCESSING,
        memory=MODERN_MEMORY,
        communication=MODERN_COMMUNICATION,
        io=MODERN_NODE_IO,
    )

    fabric = SAU(
        name="fabric",
        level="cluster",
        description=f"{num_nodes}-node partition behind a non-blocking "
                    "switched fabric (kernel-bypass messaging)",
        processing=MODERN_PROCESSING,
        memory=MODERN_MEMORY,
        communication=MODERN_COMMUNICATION,
        io=MODERN_NODE_IO,
        attributes={"num_nodes": float(num_nodes)},
    )
    root.add_child(fabric)

    node = SAU(
        name="node",
        level="node",
        description="GHz-class superscalar node: 512 KB cache, 4 GB memory",
        processing=MODERN_PROCESSING,
        memory=MODERN_MEMORY,
        communication=MODERN_COMMUNICATION,
        io=MODERN_NODE_IO,
    )
    fabric.add_child(node)

    return SAG(root=root, machine_name=f"ModernCluster-{num_nodes}")


def modern_cluster(num_nodes: int = 64, noise_seed: int = 0) -> Machine:
    """A modern-cluster partition with *num_nodes* compute nodes."""
    sag = build_modern_cluster_sag(num_nodes)
    return Machine(name=sag.machine_name, sag=sag, num_nodes=num_nodes,
                   noise_seed=noise_seed, topology_kind="switch")
