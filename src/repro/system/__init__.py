"""Systems Module: hierarchical machine characterisation (SAG / SAU).

The machine is abstracted off-line into a System Abstraction Graph whose nodes
(System Abstraction Units) export Processing, Memory, Communication/
Synchronisation and I/O parameters, plus a structural interconnect
:class:`~repro.system.topology.Topology`.  Six machine targets ship in the
registry — the paper's iPSC/860 hypercube (:func:`ipsc860`), a Paragon-class
2-D mesh (:func:`paragon`), a switched workstation cluster (:func:`cluster`),
a T3D-class 2-D torus (:func:`torus_cluster`), a CM-5-class fat tree
(:func:`cm5`) and a modern commodity cluster (:func:`modern_cluster`, the
post-CM5 target for p ≥ 64 studies) — and :func:`get_machine` builds any of
them by name.
"""

from .cluster import SWITCH_COMMUNICATION, build_cluster_sag, cluster
from .cm5 import FAT_TREE_COMMUNICATION, build_cm5_sag, cm5
from .modern_cluster import (
    MODERN_COMMUNICATION,
    build_modern_cluster_sag,
    modern_cluster,
)
from .comm_models import (
    allgather_time,
    allreduce_time,
    average_hypercube_hops,
    barrier_time,
    broadcast_time,
    gather_time,
    hypercube_dim,
    message_packets,
    p2p_time,
    reduce_time,
    scatter_time,
    shift_exchange_time,
    unstructured_gather_time,
)
from .host import ExperimentationCostModel, InterpretationWorkflow, MeasurementWorkflow
from .intrinsic_costs import (
    cshift_cost,
    maxloc_cost,
    product_cost,
    reduction_cost,
    sum_cost,
    tshift_cost,
)
from .ipsc860 import (
    CUBE_COMMUNICATION,
    I860_MEMORY,
    I860_PROCESSING,
    build_ipsc860_sag,
    ipsc860,
)
from .machine import Machine
from .paragon import MESH_COMMUNICATION, build_paragon_sag, paragon
from .registry import (
    MachineSpec,
    canonical_machine_name,
    get_machine,
    machine_names,
    machine_specs,
    register_machine,
    resolve_machine,
)
from .sag import SAG, SAGLibrary
from .sau import (
    SAU,
    CommunicationComponent,
    IOComponent,
    MemoryComponent,
    ProcessingComponent,
)
from .topology import (
    SHAPED_KINDS,
    FatTreeTopology,
    HypercubeTopology,
    MeshTopology,
    SwitchedTopology,
    Topology,
    TopologyError,
    TorusTopology,
    make_topology,
    near_square_shape,
    ring_distance,
)
from .torus_cluster import TORUS_COMMUNICATION, build_torus_cluster_sag, torus_cluster

__all__ = [
    "allgather_time",
    "allreduce_time",
    "average_hypercube_hops",
    "barrier_time",
    "broadcast_time",
    "gather_time",
    "hypercube_dim",
    "message_packets",
    "p2p_time",
    "reduce_time",
    "scatter_time",
    "shift_exchange_time",
    "unstructured_gather_time",
    "ExperimentationCostModel",
    "InterpretationWorkflow",
    "MeasurementWorkflow",
    "cshift_cost",
    "maxloc_cost",
    "product_cost",
    "reduction_cost",
    "sum_cost",
    "tshift_cost",
    "CUBE_COMMUNICATION",
    "MESH_COMMUNICATION",
    "SWITCH_COMMUNICATION",
    "TORUS_COMMUNICATION",
    "FAT_TREE_COMMUNICATION",
    "I860_MEMORY",
    "I860_PROCESSING",
    "Machine",
    "build_ipsc860_sag",
    "build_paragon_sag",
    "build_cluster_sag",
    "build_torus_cluster_sag",
    "build_cm5_sag",
    "build_modern_cluster_sag",
    "modern_cluster",
    "MODERN_COMMUNICATION",
    "ipsc860",
    "paragon",
    "cluster",
    "torus_cluster",
    "cm5",
    "MachineSpec",
    "canonical_machine_name",
    "get_machine",
    "machine_names",
    "machine_specs",
    "register_machine",
    "resolve_machine",
    "SAG",
    "SAGLibrary",
    "SAU",
    "CommunicationComponent",
    "IOComponent",
    "MemoryComponent",
    "ProcessingComponent",
    "FatTreeTopology",
    "HypercubeTopology",
    "MeshTopology",
    "SwitchedTopology",
    "TorusTopology",
    "Topology",
    "TopologyError",
    "SHAPED_KINDS",
    "make_topology",
    "near_square_shape",
    "ring_distance",
]
