"""Systems Module: hierarchical machine characterisation (SAG / SAU).

The machine is abstracted off-line into a System Abstraction Graph whose nodes
(System Abstraction Units) export Processing, Memory, Communication/
Synchronisation and I/O parameters.  The iPSC/860 abstraction used throughout
the paper's evaluation is provided by :func:`ipsc860`.
"""

from .comm_models import (
    allgather_time,
    allreduce_time,
    average_hypercube_hops,
    barrier_time,
    broadcast_time,
    gather_time,
    hypercube_dim,
    message_packets,
    p2p_time,
    reduce_time,
    scatter_time,
    shift_exchange_time,
    unstructured_gather_time,
)
from .host import ExperimentationCostModel, InterpretationWorkflow, MeasurementWorkflow
from .intrinsic_costs import (
    cshift_cost,
    maxloc_cost,
    product_cost,
    reduction_cost,
    sum_cost,
    tshift_cost,
)
from .ipsc860 import (
    CUBE_COMMUNICATION,
    I860_MEMORY,
    I860_PROCESSING,
    Machine,
    build_ipsc860_sag,
    ipsc860,
)
from .sag import SAG, SAGLibrary
from .sau import (
    SAU,
    CommunicationComponent,
    IOComponent,
    MemoryComponent,
    ProcessingComponent,
)

__all__ = [
    "allgather_time",
    "allreduce_time",
    "average_hypercube_hops",
    "barrier_time",
    "broadcast_time",
    "gather_time",
    "hypercube_dim",
    "message_packets",
    "p2p_time",
    "reduce_time",
    "scatter_time",
    "shift_exchange_time",
    "unstructured_gather_time",
    "ExperimentationCostModel",
    "InterpretationWorkflow",
    "MeasurementWorkflow",
    "cshift_cost",
    "maxloc_cost",
    "product_cost",
    "reduction_cost",
    "sum_cost",
    "tshift_cost",
    "CUBE_COMMUNICATION",
    "I860_MEMORY",
    "I860_PROCESSING",
    "Machine",
    "build_ipsc860_sag",
    "ipsc860",
    "SAG",
    "SAGLibrary",
    "SAU",
    "CommunicationComponent",
    "IOComponent",
    "MemoryComponent",
    "ProcessingComponent",
]
