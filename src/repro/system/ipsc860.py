"""Off-line abstraction of the Intel iPSC/860 hypercube (§4.4).

The paper abstracts the target machine once, off-line, from a combination of
vendor specifications (processing and memory components), assembly instruction
counts (iterative / conditional overheads) and benchmarking runs
(communication and intrinsic library parameters).  This module encodes the
resulting parameter set for the 8-node iPSC/860 used in the evaluation, plus
the SRM (System Resource Manager) front-end host and the host↔cube channel.

The numbers are representative of published iPSC/860 measurements (≈75 µs
short-message latency, ≈2.8 MB/s sustained link bandwidth, 40 MHz i860 XR
nodes with 4 KB I-cache / 8 KB D-cache / 8 MB memory) — the *relationships*
between them (latency ≫ per-byte cost ≫ flop cost) are what drive the
experiments, not the absolute values.
"""

from __future__ import annotations

from .machine import Machine
from .sag import SAG
from .sau import (
    SAU,
    CommunicationComponent,
    IOComponent,
    MemoryComponent,
    ProcessingComponent,
)

__all__ = [
    "Machine",
    "PROGRAM_STARTUP_US",
    "build_ipsc860_sag",
    "ipsc860",
]

# Node-level components -------------------------------------------------------

I860_PROCESSING = ProcessingComponent(
    clock_mhz=40.0,
    flop_time_sp=0.105,
    flop_time_dp=0.175,
    divide_time=0.90,
    int_op_time=0.045,
    branch_time=0.12,
    loop_iteration_overhead=0.18,
    loop_startup_overhead=1.6,
    conditional_overhead=0.22,
    call_overhead=1.4,
    assignment_overhead=0.05,
    peak_mflops_sp=80.0,
    peak_mflops_dp=40.0,
)

I860_MEMORY = MemoryComponent(
    icache_kbytes=4.0,
    dcache_kbytes=8.0,
    main_memory_mbytes=8.0,
    cache_line_bytes=32,
    hit_time=0.025,
    miss_penalty=0.55,
    write_through_penalty=0.10,
    memory_bandwidth_mbs=60.0,
)

CUBE_COMMUNICATION = CommunicationComponent(
    startup_latency=75.0,
    long_startup_latency=160.0,
    long_message_threshold=100,
    per_byte=0.36,
    per_hop=10.5,
    packetization_bytes=1024,
    per_packet_overhead=8.0,
    barrier_per_stage=90.0,
    collective_call_overhead=30.0,
)

NODE_IO = IOComponent(open_close_time=12000.0, per_byte=1.1, seek_time=18000.0)

#: Node-program startup charged on every run (load + initial synchronisation).
#: Used as the default by both the interpretation engine and the simulator so
#: the constant offset cancels out of the prediction-error comparison.
PROGRAM_STARTUP_US = 1800.0

# SRM host (80386 front end) ---------------------------------------------------

SRM_PROCESSING = ProcessingComponent(
    clock_mhz=25.0,
    flop_time_sp=1.9,
    flop_time_dp=3.0,
    divide_time=7.0,
    int_op_time=0.35,
    branch_time=0.5,
    loop_iteration_overhead=0.9,
    loop_startup_overhead=5.0,
    conditional_overhead=0.8,
    call_overhead=6.0,
    assignment_overhead=0.3,
    peak_mflops_sp=0.6,
    peak_mflops_dp=0.3,
)

SRM_MEMORY = MemoryComponent(
    icache_kbytes=0.0,
    dcache_kbytes=32.0,
    main_memory_mbytes=16.0,
    cache_line_bytes=16,
    hit_time=0.08,
    miss_penalty=0.9,
    memory_bandwidth_mbs=20.0,
)

HOST_CUBE_CHANNEL = CommunicationComponent(
    startup_latency=900.0,
    long_startup_latency=1500.0,
    long_message_threshold=1024,
    per_byte=1.8,               # ≈ 0.55 MB/s SRM↔cube channel
    per_hop=0.0,
    packetization_bytes=4096,
    per_packet_overhead=30.0,
    barrier_per_stage=500.0,
    collective_call_overhead=150.0,
)


def build_ipsc860_sag(num_nodes: int = 8) -> SAG:
    """Build the SAG for an iPSC/860 configuration with *num_nodes* i860 nodes."""
    if num_nodes < 1:
        raise ValueError("an iPSC/860 partition needs at least one node")

    root = SAU(
        name="system",
        level="system",
        description=f"iPSC/860 hypercube system ({num_nodes} nodes) with SRM host",
        processing=I860_PROCESSING,
        memory=I860_MEMORY,
        communication=CUBE_COMMUNICATION,
        io=NODE_IO,
    )

    host = SAU(
        name="host",
        level="host",
        description="System Resource Manager (80386 front end)",
        processing=SRM_PROCESSING,
        memory=SRM_MEMORY,
        communication=HOST_CUBE_CHANNEL,
        io=NODE_IO,
    )
    root.add_child(host)

    cube = SAU(
        name="cube",
        level="cluster",
        description=f"{num_nodes}-node i860 hypercube (Direct-Connect network)",
        processing=I860_PROCESSING,
        memory=I860_MEMORY,
        communication=CUBE_COMMUNICATION,
        io=NODE_IO,
        attributes={"num_nodes": float(num_nodes)},
    )
    root.add_child(cube)

    node = SAU(
        name="node",
        level="node",
        description="i860 XR node: 40 MHz, 4 KB I-cache, 8 KB D-cache, 8 MB memory",
        processing=I860_PROCESSING,
        memory=I860_MEMORY,
        communication=CUBE_COMMUNICATION,
        io=NODE_IO,
    )
    cube.add_child(node)

    return SAG(root=root, machine_name=f"iPSC/860-{num_nodes}")


def ipsc860(num_nodes: int = 8, noise_seed: int = 0) -> Machine:
    """The standard target machine of the paper: an 8-node iPSC/860."""
    sag = build_ipsc860_sag(num_nodes)
    return Machine(name=sag.machine_name, sag=sag, num_nodes=num_nodes,
                   noise_seed=noise_seed, topology_kind="hypercube")
