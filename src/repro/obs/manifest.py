"""Per-run manifests: a schema-versioned JSON record next to each store.

A :class:`RunManifest` is the campaign engine's flight recorder: wall time,
points evaluated, store hits/misses, the executor that actually ran,
worst/median point latency, and the simulator engine's subsystem shares —
everything a later session (or the ROADMAP's sharded-campaign monitor)
needs to judge a run without replaying it.  ``run_campaign`` writes one
automatically next to the ``ResultStore`` (``<store>.manifest.json``)
whenever observability is enabled.

Like the store itself the manifest is schema-versioned: :meth:`load`
rejects unknown formats and newer schemas eagerly instead of letting a
consumer misread fields.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .metrics import MetricRegistry
from .spans import SpanRecord, phase_shares

MANIFEST_SCHEMA_VERSION = 1
MANIFEST_FORMAT = "repro-run-manifest"


class ManifestError(ValueError):
    """A manifest file failed format/schema validation."""


def manifest_path_for(store_path: str) -> str:
    """Where a run manifest lives relative to its result store."""
    root, _ext = os.path.splitext(store_path)
    return root + ".manifest.json"


@dataclass
class RunManifest:
    """The machine-readable summary of one campaign run."""

    name: str
    mode: str
    strategy: str
    executor: str
    wall_time_s: float
    points_evaluated: int       # results the run returned (hits + fresh)
    fresh_evaluations: int      # points actually computed this run
    store_hits: int             # results served straight from the store
    store_path: Optional[str] = None
    store_records: Optional[int] = None
    point_latency_us: Dict[str, float] = field(default_factory=dict)
    engine_shares: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    created_unix: float = field(default_factory=time.time)
    schema: int = MANIFEST_SCHEMA_VERSION

    def to_json(self) -> Dict[str, Any]:
        return {
            "format": MANIFEST_FORMAT,
            "schema": self.schema,
            "name": self.name,
            "mode": self.mode,
            "strategy": self.strategy,
            "executor": self.executor,
            "wall_time_s": round(self.wall_time_s, 6),
            "points_evaluated": self.points_evaluated,
            "fresh_evaluations": self.fresh_evaluations,
            "store_hits": self.store_hits,
            "store_path": self.store_path,
            "store_records": self.store_records,
            "point_latency_us": self.point_latency_us,
            "engine_shares": self.engine_shares,
            "counters": self.counters,
            "created_unix": round(self.created_unix, 3),
        }

    def write(self, path: str) -> str:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    @classmethod
    def from_json(cls, payload: Dict[str, Any],
                  source: str = "<memory>") -> "RunManifest":
        if payload.get("format") != MANIFEST_FORMAT:
            raise ManifestError(
                f"{source}: not a {MANIFEST_FORMAT} file "
                f"(format={payload.get('format')!r})")
        schema = payload.get("schema")
        if not isinstance(schema, int) or schema < 1 \
                or schema > MANIFEST_SCHEMA_VERSION:
            raise ManifestError(
                f"{source}: unsupported manifest schema {schema!r} "
                f"(this build reads <= {MANIFEST_SCHEMA_VERSION})")
        required = ("name", "mode", "strategy", "executor", "wall_time_s",
                    "points_evaluated", "fresh_evaluations", "store_hits")
        missing = [key for key in required if key not in payload]
        if missing:
            raise ManifestError(f"{source}: missing fields {missing}")
        return cls(
            name=payload["name"],
            mode=payload["mode"],
            strategy=payload["strategy"],
            executor=payload["executor"],
            wall_time_s=float(payload["wall_time_s"]),
            points_evaluated=int(payload["points_evaluated"]),
            fresh_evaluations=int(payload["fresh_evaluations"]),
            store_hits=int(payload["store_hits"]),
            store_path=payload.get("store_path"),
            store_records=payload.get("store_records"),
            point_latency_us=dict(payload.get("point_latency_us") or {}),
            engine_shares=dict(payload.get("engine_shares") or {}),
            counters=dict(payload.get("counters") or {}),
            created_unix=float(payload.get("created_unix", 0.0)),
            schema=schema,
        )

    @classmethod
    def load(cls, path: str) -> "RunManifest":
        with open(path) as fh:
            try:
                payload = json.load(fh)
            except json.JSONDecodeError as err:
                raise ManifestError(f"{path}: invalid JSON ({err})") from err
        return cls.from_json(payload, source=path)


def _latency_stats(spans: List[SpanRecord],
                   registry: Optional[MetricRegistry]) -> Dict[str, float]:
    """worst/median/mean point latency — exact from ``point`` spans when the
    run stayed in-process, bucket-approximate from the merged histogram when
    the points ran in worker processes (whose spans don't cross the pool)."""
    durations = sorted(s.dur_us for s in spans if s.name == "point")
    if durations:
        count = len(durations)
        return {
            "count": count,
            "worst": round(durations[-1], 1),
            "median": round(durations[count // 2], 1),
            "mean": round(sum(durations) / count, 1),
            "source": "spans",
        }
    if registry is not None:
        for instrument in registry.instruments():
            if instrument.kind == "histogram" \
                    and instrument.name == "repro_point_latency_us" \
                    and instrument.count:
                return {
                    "count": instrument.count,
                    "worst": instrument.quantile(1.0),
                    "median": instrument.quantile(0.5),
                    "mean": round(instrument.sum / instrument.count, 1),
                    "source": "histogram",
                }
    return {"count": 0}


def build_manifest(*, name: str, mode: str, strategy: str, executor: str,
                   wall_time_s: float, points_evaluated: int,
                   fresh_evaluations: int, store_hits: int,
                   store_path: Optional[str] = None,
                   store_records: Optional[int] = None,
                   spans: Optional[List[SpanRecord]] = None,
                   registry: Optional[MetricRegistry] = None,
                   ) -> RunManifest:
    """Assemble a manifest from a run's span window and metric registry."""
    spans = spans or []
    shares = phase_shares(spans)
    return RunManifest(
        name=name,
        mode=mode,
        strategy=strategy,
        executor=executor,
        wall_time_s=wall_time_s,
        points_evaluated=points_evaluated,
        fresh_evaluations=fresh_evaluations,
        store_hits=store_hits,
        store_path=store_path,
        store_records=store_records,
        point_latency_us=_latency_stats(spans, registry),
        engine_shares={key: round(value, 4)
                       for key, value in shares.items()},
        counters=registry.flatten() if registry is not None else {},
    )
