"""repro.obs — runtime telemetry: spans, metrics, and run manifests.

The instrumentation layer every subsystem reports into: ``predict`` /
``measure`` stage spans, per-phase simulator spans (node cost / noise /
network drain), campaign point spans and store counters, advisor
candidate spans.  Disabled by default; the disabled path is a module-level
no-op (a shared singleton span/metric, no allocation, no clock read) so
instrumentation sites cost almost nothing in production runs.

Enable with the ``REPRO_OBS`` environment variable (``1``/``true``/``on``)
or programmatically:

>>> import repro.obs as obs
>>> obs.reset()
>>> obs.enable()
>>> with obs.span("demo", task="doctest"):
...     pass
>>> [s.name for s in obs.get_tracer().spans()]
['demo']
>>> obs.counter("demo_total").inc()
>>> obs.get_registry().flatten()["demo_total"]
1.0
>>> obs.disable()
>>> obs.span("after-disable") is obs.NOOP_SPAN  # no-op fast path again
True

Exports live in three sibling modules: :mod:`repro.obs.spans` (tracer),
:mod:`repro.obs.metrics` (counter/gauge/histogram registry), and
:mod:`repro.obs.export` (Chrome trace / Prometheus text / JSONL);
:mod:`repro.obs.manifest` adds the per-run :class:`RunManifest`.
"""

from __future__ import annotations

import os
from typing import Any, Optional, Tuple

from .export import (
    chrome_trace,
    prometheus_text,
    spans_jsonl,
    write_chrome_trace,
    write_span_log,
)
from .manifest import (
    MANIFEST_FORMAT,
    MANIFEST_SCHEMA_VERSION,
    ManifestError,
    RunManifest,
    build_manifest,
    manifest_path_for,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NOOP_METRIC,
)
from .spans import NOOP_SPAN, SpanRecord, Tracer, phase_shares

ENV_VAR = "REPRO_OBS"

_TRUTHY = ("1", "true", "yes", "on")


def _env_enabled(environ=os.environ) -> bool:
    return environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


_enabled = _env_enabled()
_tracer = Tracer()
_registry = MetricRegistry()


def enable() -> None:
    """Turn instrumentation on for this process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Return to the no-op fast path."""
    global _enabled
    _enabled = False


def enabled() -> bool:
    return _enabled


def reset() -> None:
    """Drop all recorded spans and metrics (keeps the enabled flag)."""
    _tracer.clear()
    _registry.reset()


def get_tracer() -> Tracer:
    return _tracer


def get_registry() -> MetricRegistry:
    return _registry


# -- instrumentation-site helpers (the no-op gate lives here) --------------

def span(name: str, **attrs: Any):
    """A timed region: ``with span("simulate", nprocs=256): ...``.

    Returns the shared no-op singleton when disabled — callers keep a
    bare ``with`` statement either way.
    """
    if not _enabled:
        return NOOP_SPAN
    return _tracer.span(name, attrs or None)


def counter(name: str, **labels: Any):
    if not _enabled:
        return NOOP_METRIC
    return _registry.counter(name, **labels)


def gauge(name: str, **labels: Any):
    if not _enabled:
        return NOOP_METRIC
    return _registry.gauge(name, **labels)


def histogram(name: str, buckets: Optional[Tuple[float, ...]] = None,
              **labels: Any):
    if not _enabled:
        return NOOP_METRIC
    return _registry.histogram(name, buckets=buckets, **labels)


__all__ = [
    "ENV_VAR",
    "enable",
    "disable",
    "enabled",
    "reset",
    "get_tracer",
    "get_registry",
    "span",
    "counter",
    "gauge",
    "histogram",
    "Tracer",
    "SpanRecord",
    "phase_shares",
    "NOOP_SPAN",
    "NOOP_METRIC",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "DEFAULT_LATENCY_BUCKETS_US",
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "spans_jsonl",
    "write_span_log",
    "RunManifest",
    "build_manifest",
    "manifest_path_for",
    "ManifestError",
    "MANIFEST_FORMAT",
    "MANIFEST_SCHEMA_VERSION",
]
