"""Named counters, gauges, and histograms with label support.

Instruments live in a :class:`MetricRegistry`, keyed by ``(kind, name,
labels)`` so ``counter("repro_simulations_total", engine="vector")`` and
``engine="loop"`` are independent series, Prometheus-style.  Histograms
use fixed log-spaced latency buckets (µs) by default so point latencies
from microsecond predicts to multi-second simulates land in useful bins.

Registries snapshot to plain picklable dicts (:meth:`MetricRegistry.collect`)
and merge snapshots back (:meth:`MetricRegistry.merge`) — the mechanism the
campaign layer uses to carry worker-process metrics across a
``ProcessPoolExecutor`` boundary instead of losing them when the worker
exits: each task returns ``delta_since(before)`` and the parent merges it.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Tuple

#: Default histogram upper bounds: log-spaced (half-decade steps) from
#: 100 µs to 100 s, expressed in µs.  ``+Inf`` is implicit.
DEFAULT_LATENCY_BUCKETS_US: Tuple[float, ...] = tuple(
    round(10.0 ** (exp / 2.0), 1) for exp in range(4, 17)
)

LabelsKey = Tuple[Tuple[str, str], ...]
InstrumentKey = Tuple[str, str, LabelsKey]


def _labels_key(labels: Dict[str, Any]) -> LabelsKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: LabelsKey):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-written value (set/inc/dec)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: LabelsKey):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Fixed-bucket histogram; bucket ``i`` counts values ``<= bounds[i]``
    (Prometheus ``le`` semantics), with a final implicit ``+Inf`` bucket."""

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count",
                 "_lock")

    def __init__(self, name: str, labels: LabelsKey,
                 buckets: Optional[Tuple[float, ...]] = None):
        self.name = name
        self.labels = labels
        bounds = tuple(sorted(buckets or DEFAULT_LATENCY_BUCKETS_US))
        if not bounds:
            raise ValueError(f"histogram {self.name!r} needs >= 1 bucket")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket holding the
        q-th observation (``+Inf`` bucket reports the largest finite bound)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            total = self.count
            counts = list(self.counts)
        if total == 0:
            return 0.0
        rank = max(1, int(q * total + 0.5))
        seen = 0
        for index, bucket_count in enumerate(counts):
            seen += bucket_count
            if seen >= rank:
                return self.bounds[min(index, len(self.bounds) - 1)]
        return self.bounds[-1]


class _NoopMetric:
    """Shared do-nothing instrument returned while obs is disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NOOP_METRIC = _NoopMetric()


class MetricRegistry:
    """Thread-safe home for every instrument; snapshot/merge for pools."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[InstrumentKey, Any] = {}

    def _get(self, cls, name: str, labels: Dict[str, Any], **kwargs):
        key = (cls.kind, name, _labels_key(labels))
        with self._lock:
            found = self._instruments.get(key)
            if found is None:
                for other_kind, other_name, _ in self._instruments:
                    if other_name == name and other_kind != cls.kind:
                        raise ValueError(
                            f"metric {name!r} already registered as "
                            f"{other_kind}, cannot re-register as {cls.kind}")
                found = self._instruments[key] = cls(name, key[2], **kwargs)
            return found

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: Optional[Tuple[float, ...]] = None,
                  **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def instruments(self) -> List[Any]:
        with self._lock:
            return list(self._instruments.values())

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()

    # -- snapshot / merge (process-pool transport) -------------------------

    def collect(self) -> Dict[InstrumentKey, Dict[str, Any]]:
        """A plain picklable snapshot of every instrument's state."""
        snapshot: Dict[InstrumentKey, Dict[str, Any]] = {}
        for instrument in self.instruments():
            key = (instrument.kind, instrument.name, instrument.labels)
            if instrument.kind == "histogram":
                with instrument._lock:
                    snapshot[key] = {
                        "bounds": instrument.bounds,
                        "counts": list(instrument.counts),
                        "sum": instrument.sum,
                        "count": instrument.count,
                    }
            else:
                snapshot[key] = {"value": instrument.value}
        return snapshot

    def delta_since(self, before: Dict[InstrumentKey, Dict[str, Any]]
                    ) -> Dict[InstrumentKey, Dict[str, Any]]:
        """What changed since ``before`` (a prior :meth:`collect`).

        Counters and histograms subtract; gauges carry their latest value.
        Unchanged entries are dropped, keeping the pickled payload small.
        """
        delta: Dict[InstrumentKey, Dict[str, Any]] = {}
        for key, state in self.collect().items():
            kind = key[0]
            prior = before.get(key)
            if kind == "counter":
                value = state["value"] - (prior["value"] if prior else 0.0)
                if value != 0.0:
                    delta[key] = {"value": value}
            elif kind == "gauge":
                if prior is None or state["value"] != prior["value"]:
                    delta[key] = {"value": state["value"]}
            else:
                prior_counts = prior["counts"] if prior else [0] * len(
                    state["counts"])
                counts = [now - then for now, then
                          in zip(state["counts"], prior_counts)]
                count = state["count"] - (prior["count"] if prior else 0)
                if count:
                    delta[key] = {
                        "bounds": state["bounds"],
                        "counts": counts,
                        "sum": state["sum"] - (prior["sum"] if prior
                                               else 0.0),
                        "count": count,
                    }
        return delta

    def merge(self, snapshot: Dict[InstrumentKey, Dict[str, Any]]) -> None:
        """Fold a snapshot/delta into this registry (counters and histograms
        add; gauges take the snapshot's value)."""
        for (kind, name, labels), state in snapshot.items():
            labels_dict = dict(labels)
            if kind == "counter":
                self.counter(name, **labels_dict).inc(state["value"])
            elif kind == "gauge":
                self.gauge(name, **labels_dict).set(state["value"])
            else:
                histogram = self.histogram(
                    name, buckets=tuple(state["bounds"]), **labels_dict)
                if histogram.bounds != tuple(state["bounds"]):
                    raise ValueError(
                        f"histogram {name!r} bucket bounds differ between "
                        "registries; cannot merge")
                with histogram._lock:
                    for index, bucket_count in enumerate(state["counts"]):
                        histogram.counts[index] += bucket_count
                    histogram.sum += state["sum"]
                    histogram.count += state["count"]

    def flatten(self) -> Dict[str, float]:
        """Scalar view for manifests: ``name{k="v"}`` -> value (histograms
        contribute ``_count`` and ``_sum`` series)."""
        flat: Dict[str, float] = {}
        for instrument in self.instruments():
            label_text = ",".join(f'{k}="{v}"' for k, v in instrument.labels)
            suffix = "{%s}" % label_text if label_text else ""
            if instrument.kind == "histogram":
                flat[f"{instrument.name}_count{suffix}"] = instrument.count
                flat[f"{instrument.name}_sum{suffix}"] = instrument.sum
            else:
                flat[f"{instrument.name}{suffix}"] = instrument.value
        return flat
