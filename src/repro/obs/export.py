"""Exporters: Chrome-trace JSON, Prometheus text exposition, JSONL span log.

Three read-only views over a :class:`~repro.obs.spans.Tracer` and a
:class:`~repro.obs.metrics.MetricRegistry`:

* :func:`chrome_trace` — the Trace Event Format dict that
  ``chrome://tracing`` (and Perfetto's legacy loader) opens directly:
  complete events (``ph: "X"``) with µs timestamps, one track per thread.
* :func:`prometheus_text` — the text exposition format (``# TYPE`` lines,
  ``name{label="v"} value`` samples, cumulative ``_bucket{le=...}`` series
  for histograms) so a future serve layer can expose ``/metrics`` verbatim.
* :func:`spans_jsonl` — one JSON object per finished span, for ad-hoc
  ``jq``/pandas analysis without a trace viewer.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from .metrics import MetricRegistry
from .spans import SpanRecord


# -- Chrome trace ----------------------------------------------------------

def chrome_trace(spans: List[SpanRecord],
                 process_name: str = "repro") -> Dict[str, Any]:
    """Trace Event Format dict for ``chrome://tracing`` / Perfetto."""
    pid = os.getpid()
    events: List[Dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": 0,
        "args": {"name": process_name},
    }]
    for span in spans:
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": span.start_us,
            "dur": span.dur_us,
            "pid": pid,
            "tid": span.tid,
        }
        if span.attrs:
            event["args"] = {key: _jsonable(value)
                             for key, value in span.attrs.items()}
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: List[SpanRecord],
                       process_name: str = "repro") -> str:
    with open(path, "w") as fh:
        json.dump(chrome_trace(spans, process_name=process_name), fh)
        fh.write("\n")
    return path


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


# -- Prometheus text exposition --------------------------------------------

def prometheus_text(registry: MetricRegistry) -> str:
    """Prometheus text format (one ``# TYPE`` per metric family)."""
    by_family: Dict[str, List[Any]] = {}
    for instrument in registry.instruments():
        by_family.setdefault(instrument.name, []).append(instrument)

    lines: List[str] = []
    for name in sorted(by_family):
        family = by_family[name]
        lines.append(f"# TYPE {name} {family[0].kind}")
        for instrument in sorted(family, key=lambda i: i.labels):
            if instrument.kind == "histogram":
                lines.extend(_histogram_lines(instrument))
            else:
                lines.append(
                    f"{name}{_label_text(instrument.labels)} "
                    f"{_format_value(instrument.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def _histogram_lines(histogram: Any) -> List[str]:
    lines: List[str] = []
    cumulative = 0
    for bound, bucket_count in zip(histogram.bounds, histogram.counts):
        cumulative += bucket_count
        labels = _label_text(histogram.labels, extra=("le",
                                                      _format_value(bound)))
        lines.append(f"{histogram.name}_bucket{labels} {cumulative}")
    labels = _label_text(histogram.labels, extra=("le", "+Inf"))
    lines.append(f"{histogram.name}_bucket{labels} {histogram.count}")
    base = _label_text(histogram.labels)
    lines.append(f"{histogram.name}_sum{base} "
                 f"{_format_value(histogram.sum)}")
    lines.append(f"{histogram.name}_count{base} {histogram.count}")
    return lines


def _label_text(labels, extra=None) -> str:
    pairs = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in pairs)
    return "{%s}" % body


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


# -- JSONL span log --------------------------------------------------------

def spans_jsonl(spans: List[SpanRecord]) -> str:
    """One JSON object per span (µs timestamps relative to tracer epoch)."""
    lines = []
    for span in spans:
        record: Dict[str, Any] = {
            "name": span.name,
            "start_us": round(span.start_us, 3),
            "dur_us": round(span.dur_us, 3),
            "tid": span.tid,
            "depth": span.depth,
        }
        if span.attrs:
            record["attrs"] = {key: _jsonable(value)
                               for key, value in span.attrs.items()}
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def write_span_log(path: str, spans: List[SpanRecord]) -> str:
    with open(path, "w") as fh:
        fh.write(spans_jsonl(spans))
    return path


__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "spans_jsonl",
    "write_span_log",
]
