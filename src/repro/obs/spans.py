"""Thread-safe span tracer with a disabled-mode no-op fast path.

A *span* is one timed region of the runtime — ``span("simulate",
nprocs=256)`` — recorded against the monotonic clock
(:func:`time.perf_counter`) so wall-clock attribution survives NTP steps.
Spans nest: each carries the per-thread depth at which it ran, which is
enough to rebuild the call tree (and to emit Chrome-trace ``ph: "X"``
events, which nest purely by timestamp containment).

The hot-path contract is the whole point of this module: when tracing is
disabled (the default), ``span(...)`` returns a shared no-op singleton and
costs one attribute load plus one call — no allocation, no clock read, no
lock.  Instrumentation sites therefore stay in production code permanently
instead of living in throwaway profiling scripts.

Recording itself is also cheap by design: a finished span is one tuple
appended to a list (``list.append`` is atomic under the GIL, so the common
path takes no lock; the lock guards only snapshot/clear/mark bookkeeping).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, NamedTuple, Optional, Tuple


class SpanRecord(NamedTuple):
    """One finished span, times in microseconds relative to the tracer epoch."""

    name: str
    start_us: float
    dur_us: float
    tid: int
    depth: int
    attrs: Optional[Dict[str, Any]]  # None when the site passed no attributes


class _NoopSpan:
    """Shared do-nothing context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs):
        return self


NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    """An open span; records itself into the tracer on exit (always, even
    when the body raises — the exception is noted and re-raised)."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start", "_depth")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Optional[Dict[str, Any]]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def set(self, **attrs):
        """Attach attributes after entry (e.g. a result computed in-body)."""
        if self._attrs is None:
            self._attrs = {}
        self._attrs.update(attrs)
        return self

    def __enter__(self):
        local = self._tracer._local
        self._depth = getattr(local, "depth", 0)
        local.depth = self._depth + 1
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        end = time.perf_counter()
        tracer = self._tracer
        tracer._local.depth = self._depth
        attrs = self._attrs
        if exc_type is not None:
            attrs = dict(attrs or ())
            attrs["error"] = exc_type.__name__
        tracer._records.append(SpanRecord(
            name=self._name,
            start_us=(self._start - tracer._epoch) * 1e6,
            dur_us=(end - self._start) * 1e6,
            tid=threading.get_ident(),
            depth=self._depth,
            attrs=attrs,
        ))
        return False


class Tracer:
    """Collects finished spans; safe to record into from many threads."""

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._epoch_unix = time.time()
        self._records: List[SpanRecord] = []
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------

    def span(self, name: str,
             attrs: Optional[Dict[str, Any]] = None) -> _LiveSpan:
        return _LiveSpan(self, name, attrs)

    # -- reading -----------------------------------------------------------

    def mark(self) -> int:
        """An opaque position; pass to :meth:`spans_since` to window a run."""
        with self._lock:
            return len(self._records)

    def spans(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._records)

    def spans_since(self, mark: int) -> List[SpanRecord]:
        with self._lock:
            return list(self._records[mark:])

    def aggregate(self, spans: Optional[List[SpanRecord]] = None
                  ) -> Dict[str, float]:
        """Total duration (µs) per span name over ``spans`` (default: all)."""
        totals: Dict[str, float] = {}
        for record in self.spans() if spans is None else spans:
            totals[record.name] = totals.get(record.name, 0.0) + record.dur_us
        return totals

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._epoch = time.perf_counter()
            self._epoch_unix = time.time()

    @property
    def epoch_unix(self) -> float:
        """Wall-clock (unix) time of the tracer epoch, for trace metadata."""
        return self._epoch_unix


def phase_shares(spans: List[SpanRecord],
                 total_name: str = "simulate",
                 phase_names: Tuple[str, ...] = ("node_cost", "noise",
                                                 "network"),
                 ) -> Dict[str, float]:
    """Subsystem wall-clock shares from a span window.

    Sums every ``total_name`` span as the denominator and each name in
    ``phase_names`` as a bucket; whatever the buckets don't cover is
    ``other`` (data-plane execution, bookkeeping).  By construction the
    buckets plus ``other`` sum to the total — the invariant the old
    pstats-filename bucketing could silently break — and this function
    asserts it.  Returns fractions in ``[0, 1]``; empty when no
    ``total_name`` span was recorded.
    """
    totals: Dict[str, float] = {}
    for record in spans:
        totals[record.name] = totals.get(record.name, 0.0) + record.dur_us
    denom = totals.get(total_name, 0.0)
    if denom <= 0.0:
        return {}
    shares = {name: totals.get(name, 0.0) / denom for name in phase_names}
    covered = sum(shares.values())
    # Phases are disjoint sub-regions of the total, so coverage can only
    # exceed 1 through clock jitter on very short spans.
    assert covered <= 1.0 + 1e-6, \
        f"phase spans cover {covered:.4f} of {total_name!r} (> 1)"
    shares["other"] = max(0.0, 1.0 - covered)
    reconciled = sum(shares.values())
    assert abs(reconciled - 1.0) <= 1e-6, \
        f"phase shares sum to {reconciled:.6f}, not 1"
    return shares
