"""Alignment of arrays with templates (the HPF ALIGN directive).

An ALIGN directive

    !HPF$ ALIGN A(i, j) WITH T(j, i+1)

establishes, for each array axis, which template axis it follows and with
what constant offset.  The supported alignment functions are the identity /
permutation / constant-offset subset (``dummy`` and ``dummy + c`` and
``dummy - c``), which covers the Fortran 90D benchmark suite; general affine
(stride) alignment raises a :class:`~repro.frontend.errors.DirectiveError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..frontend import ast_nodes as ast
from ..frontend.errors import DirectiveError
from ..frontend.symbols import try_eval_const


@dataclass(frozen=True)
class AxisAlignment:
    """Alignment of one array axis: follows ``template_axis`` with ``offset``."""

    array_axis: int
    template_axis: int
    offset: int = 0


@dataclass
class Alignment:
    """Resolved alignment of one array with one template."""

    alignee: str
    target: str
    axis_alignments: list[AxisAlignment] = field(default_factory=list)
    # Template axes that do not follow any array axis (a '*' or constant
    # subscript in the directive) — the array is replicated/fixed along them.
    free_template_axes: list[int] = field(default_factory=list)
    line: int = 0

    def template_axis_for(self, array_axis: int) -> Optional[int]:
        for aa in self.axis_alignments:
            if aa.array_axis == array_axis:
                return aa.template_axis
        return None

    def offset_for(self, array_axis: int) -> int:
        for aa in self.axis_alignments:
            if aa.array_axis == array_axis:
                return aa.offset
        return 0

    @classmethod
    def identity(cls, alignee: str, target: str, rank: int) -> "Alignment":
        """The default alignment: axis k of the array follows axis k of the template."""
        return cls(
            alignee=alignee,
            target=target,
            axis_alignments=[AxisAlignment(k, k, 0) for k in range(rank)],
        )

    @classmethod
    def from_directive(
        cls,
        directive: ast.AlignDirective,
        env: dict[str, float] | None = None,
    ) -> "Alignment":
        """Resolve an ALIGN directive into per-axis (template axis, offset) pairs."""
        dummies = [d.lower() for d in directive.source_dummies]
        alignment = cls(alignee=directive.alignee.lower(), target=directive.target.lower(),
                        line=directive.line)

        if not directive.target_subscripts:
            # ALIGN A WITH T  (no subscripts): identity alignment over A's rank,
            # which equals the number of source dummies (possibly zero).
            rank = len(dummies)
            alignment.axis_alignments = [AxisAlignment(k, k, 0) for k in range(rank)]
            return alignment

        for template_axis, subscript in enumerate(directive.target_subscripts):
            if subscript is None:
                alignment.free_template_axes.append(template_axis)
                continue
            dummy_name, offset = _parse_alignment_subscript(subscript, dummies, env)
            if dummy_name is None:
                # Constant subscript: the array is fixed at one template position
                # along this axis; treat it as a free axis for ownership purposes.
                alignment.free_template_axes.append(template_axis)
                continue
            array_axis = dummies.index(dummy_name)
            alignment.axis_alignments.append(
                AxisAlignment(array_axis=array_axis, template_axis=template_axis, offset=offset)
            )

        mapped = {aa.array_axis for aa in alignment.axis_alignments}
        for axis, dummy in enumerate(dummies):
            if dummy != "*" and axis not in mapped:
                raise DirectiveError(
                    f"ALIGN {directive.alignee}: dummy index '{dummy}' does not appear "
                    f"in the WITH clause",
                    directive.line,
                )
        return alignment


def _parse_alignment_subscript(
    expr: ast.Expr,
    dummies: list[str],
    env: dict[str, float] | None,
) -> tuple[Optional[str], int]:
    """Decompose an alignment subscript into (dummy name, constant offset).

    Supported forms: ``i``, ``i + c``, ``i - c``, ``c + i`` and plain constants
    (returned as ``(None, value)``).
    """
    if isinstance(expr, ast.Var):
        name = expr.name.lower()
        if name in dummies:
            return name, 0
        value = try_eval_const(expr, env)
        if value is not None:
            return None, int(value)
        raise DirectiveError(f"unknown name '{expr.name}' in ALIGN subscript", expr.line)

    if isinstance(expr, ast.Num):
        return None, int(expr.value)

    if isinstance(expr, ast.BinOp) and expr.op in ("+", "-"):
        left_var = isinstance(expr.left, ast.Var) and expr.left.name.lower() in dummies
        right_var = isinstance(expr.right, ast.Var) and expr.right.name.lower() in dummies
        if left_var and not right_var:
            const = try_eval_const(expr.right, env)
            if const is None:
                raise DirectiveError("non-constant offset in ALIGN subscript", expr.line)
            offset = int(const) if expr.op == "+" else -int(const)
            return expr.left.name.lower(), offset
        if right_var and not left_var and expr.op == "+":
            const = try_eval_const(expr.left, env)
            if const is None:
                raise DirectiveError("non-constant offset in ALIGN subscript", expr.line)
            return expr.right.name.lower(), int(const)

    value = try_eval_const(expr, env)
    if value is not None:
        return None, int(value)
    raise DirectiveError(
        "only identity / constant-offset alignment functions are supported", expr.line
    )
