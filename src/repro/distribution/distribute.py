"""Distribution descriptors: per-dimension formats and whole-array mappings.

The central class is :class:`ArrayDistribution`, which records — for one
array — the result of applying the program's ALIGN and DISTRIBUTE directives:
for every array axis, whether it is divided BLOCK or CYCLIC across a
processor-grid axis or kept whole on every processor (collapsed / ``*``), and
how global indices translate to owning processors and local indices.

This object is shared verbatim between the compiler (owner-computes
partitioning and communication detection), the interpretation engine (local
iteration counts, message sizes) and the simulator (NumPy block carving), so
all three agree on layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from . import layout
from .processors import ProcessorGrid


@dataclass(frozen=True)
class DimDistribution:
    """Distribution format of a single template/array dimension."""

    kind: str = "collapsed"     # 'block' | 'cyclic' | 'collapsed'
    block: int = 1              # block size for cyclic(k); ignored otherwise

    def __post_init__(self) -> None:
        if self.kind not in ("block", "cyclic", "collapsed"):
            raise ValueError(f"unknown distribution kind {self.kind!r}")
        if self.block <= 0:
            raise ValueError("cyclic block size must be positive")

    @property
    def is_distributed(self) -> bool:
        return self.kind != "collapsed"

    def describe(self) -> str:
        if self.kind == "collapsed":
            return "*"
        if self.kind == "cyclic" and self.block != 1:
            return f"CYCLIC({self.block})"
        return self.kind.upper()

    @classmethod
    def from_format(cls, fmt: str, block: int | None = None) -> "DimDistribution":
        fmt = fmt.lower()
        if fmt == "*":
            return cls(kind="collapsed")
        if fmt == "block":
            return cls(kind="block")
        if fmt == "cyclic":
            return cls(kind="cyclic", block=int(block) if block else 1)
        raise ValueError(f"unsupported distribution format {fmt!r}")


@dataclass(frozen=True)
class AxisMapping:
    """How one array axis is mapped onto the machine.

    ``extent``            global extent of the array axis.
    ``dist``              BLOCK / CYCLIC / collapsed format.
    ``nprocs``            number of processors across this axis (1 if collapsed).
    ``grid_axis``         processor-grid axis index, or None if collapsed.
    ``template_extent``   extent of the template axis the array axis is aligned to.
    ``offset``            alignment offset: array index i lives at template index i+offset.
    """

    extent: int
    dist: DimDistribution = field(default_factory=DimDistribution)
    nprocs: int = 1
    grid_axis: Optional[int] = None
    template_extent: Optional[int] = None
    offset: int = 0

    @property
    def is_distributed(self) -> bool:
        return self.dist.is_distributed and self.nprocs > 1

    @property
    def map_extent(self) -> int:
        """Extent of the index space ownership is computed over (template extent)."""
        return self.template_extent if self.template_extent is not None else self.extent

    def owner(self, gidx: int) -> int:
        """Owning processor coordinate along this axis for global index *gidx* (0-based)."""
        if not self.is_distributed:
            return 0
        tidx = gidx + self.offset
        if self.dist.kind == "block":
            return layout.block_owner(tidx, self.map_extent, self.nprocs)
        return layout.cyclic_owner(tidx, self.nprocs, self.dist.block)

    def local_count(self, pcoord: int) -> int:
        """Number of array elements along this axis owned by processor coordinate *pcoord*."""
        if not self.is_distributed:
            return self.extent
        return int(len(self.local_indices(pcoord)))

    def local_indices(self, pcoord: int) -> np.ndarray:
        """Global indices (0-based, array index space) owned by *pcoord*, ascending."""
        if not self.is_distributed:
            return layout.collapsed_local_indices(self.extent)
        if self.dist.kind == "block":
            tidx = layout.block_local_indices(pcoord, self.map_extent, self.nprocs)
        else:
            tidx = layout.cyclic_local_indices(pcoord, self.map_extent, self.nprocs, self.dist.block)
        gidx = tidx - self.offset
        return gidx[(gidx >= 0) & (gidx < self.extent)]

    def global_to_local(self, gidx: int) -> int:
        """Local index of *gidx* on its owning processor."""
        if not self.is_distributed:
            return gidx
        tidx = gidx + self.offset
        if self.dist.kind == "block":
            return layout.block_global_to_local(tidx, self.map_extent, self.nprocs)
        return layout.cyclic_global_to_local(tidx, self.nprocs, self.dist.block)

    def owners_of(self, gidx: np.ndarray) -> np.ndarray:
        """Owning processor coordinate of every global (0-based) index in *gidx*.

        The vectorised membership test behind per-rank iteration counting:
        ``owners_of(values) == pcoord`` is elementwise-equal to
        ``np.isin(values, local_indices(pcoord))``.  Indices outside the
        array extent or its template map to ``-1`` (owned by nobody); for a
        collapsed axis every in-range index maps to coordinate ``0``.
        """
        g = np.asarray(gidx, dtype=np.int64)
        if not self.is_distributed:
            return np.where((g >= 0) & (g < self.extent), 0, -1)
        t = g + self.offset
        valid = (g >= 0) & (g < self.extent) & (t >= 0) & (t < self.map_extent)
        t = np.where(valid, t, 0)
        if self.dist.kind == "block":
            owners = layout.block_owner_array(t, self.map_extent, self.nprocs)
        else:
            owners = layout.cyclic_owner_array(t, self.nprocs, self.dist.block)
        return np.where(valid, owners, -1)

    def local_counts(self) -> np.ndarray:
        """Per-processor-coordinate element counts along this axis.

        Vectorised ``[local_count(p) for p in range(nprocs)]``; a collapsed
        axis yields a single entry (its count is coordinate-independent).
        """
        if not self.is_distributed:
            return np.array([self.extent], dtype=np.int64)
        owners = self.owners_of(np.arange(self.extent, dtype=np.int64))
        return np.bincount(owners[owners >= 0],
                           minlength=self.nprocs).astype(np.int64)

    def max_local_count(self) -> int:
        if not self.is_distributed:
            return self.extent
        return max(self.local_count(p) for p in range(self.nprocs))

    def avg_local_count(self) -> float:
        if not self.is_distributed:
            return float(self.extent)
        return self.extent / self.nprocs

    def describe(self) -> str:
        if not self.is_distributed:
            return "*"
        return f"{self.dist.describe()}/{self.nprocs}p"


@dataclass
class ArrayDistribution:
    """Complete mapping of one array onto a processor grid."""

    name: str
    shape: tuple[int, ...]
    axes: list[AxisMapping]
    grid: Optional[ProcessorGrid] = None
    element_size: int = 4
    lower_bounds: tuple[int, ...] = ()
    template_name: Optional[str] = None

    def __post_init__(self) -> None:
        if len(self.axes) != len(self.shape):
            raise ValueError("one AxisMapping required per array dimension")
        if not self.lower_bounds:
            self.lower_bounds = tuple(1 for _ in self.shape)

    # -- basic properties ----------------------------------------------------

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        total = 1
        for extent in self.shape:
            total *= extent
        return total

    @property
    def is_replicated(self) -> bool:
        """True when the array is not divided across processors at all."""
        return self.grid is None or not any(axis.is_distributed for axis in self.axes)

    @property
    def distributed_axes(self) -> list[int]:
        return [i for i, axis in enumerate(self.axes) if axis.is_distributed]

    @property
    def nprocs(self) -> int:
        return self.grid.size if self.grid is not None else 1

    # -- ownership -------------------------------------------------------------

    def owner_coords(self, index: tuple[int, ...]) -> tuple[int, ...]:
        """Grid coordinates of the owner of the (0-based) global *index*."""
        if self.grid is None:
            return ()
        coords = [0] * self.grid.rank
        for axis_no, axis in enumerate(self.axes):
            if axis.grid_axis is not None and axis.is_distributed:
                coords[axis.grid_axis] = axis.owner(index[axis_no])
        return tuple(coords)

    def owner_rank(self, index: tuple[int, ...]) -> int:
        """Linear rank of the owner of global *index* (0 for replicated arrays)."""
        if self.grid is None:
            return 0
        return self.grid.linear_rank(self.owner_coords(index))

    # -- local views -------------------------------------------------------------

    def _axis_pcoord(self, rank: int, axis: AxisMapping) -> int:
        if self.grid is None or axis.grid_axis is None:
            return 0
        return self.grid.coords(rank)[axis.grid_axis]

    def local_shape(self, rank: int) -> tuple[int, ...]:
        """Shape of the local block owned by processor *rank*."""
        return tuple(
            axis.local_count(self._axis_pcoord(rank, axis)) for axis in self.axes
        )

    def local_indices(self, rank: int, axis_no: int) -> np.ndarray:
        """Global (0-based) indices along *axis_no* owned by *rank*."""
        axis = self.axes[axis_no]
        return axis.local_indices(self._axis_pcoord(rank, axis))

    def local_size(self, rank: int) -> int:
        total = 1
        for extent in self.local_shape(rank):
            total *= extent
        return total

    def local_bytes(self, rank: int) -> int:
        return self.local_size(rank) * self.element_size

    def axis_pcoords(self) -> np.ndarray:
        """``(nprocs, rank)`` array of every rank's coordinate along each axis.

        Row ``r`` column ``a`` equals the scalar ``_axis_pcoord(r, axes[a])``
        lookup the per-rank loops perform: the rank's grid coordinate along
        the axis's grid dimension, or ``0`` for unmapped axes.
        """
        p = max(self.nprocs, 1)
        out = np.zeros((p, self.rank), dtype=np.int64)
        if self.grid is None:
            return out
        coords = self.grid.coords_array()
        for axis_no, axis in enumerate(self.axes):
            if axis.grid_axis is not None:
                out[:, axis_no] = coords[:, axis.grid_axis]
        return out

    def local_sizes(self) -> np.ndarray:
        """Per-rank local element counts (vectorised ``local_size``)."""
        p = max(self.nprocs, 1)
        sizes = np.ones(p, dtype=np.int64)
        pcoords = self.axis_pcoords()
        for axis_no, axis in enumerate(self.axes):
            table = axis.local_counts()
            if table.shape[0] == 1:
                sizes *= int(table[0])
            else:
                sizes *= table[pcoords[:, axis_no]]
        return sizes

    def max_local_shape(self) -> tuple[int, ...]:
        return tuple(axis.max_local_count() for axis in self.axes)

    def max_local_size(self) -> int:
        total = 1
        for extent in self.max_local_shape():
            total *= extent
        return total

    def avg_local_size(self) -> float:
        total = 1.0
        for axis in self.axes:
            total *= axis.avg_local_count()
        return total

    # -- convenience ------------------------------------------------------------

    def owning_ranks(self) -> list[int]:
        """Ranks that own at least one element (all ranks for replicated arrays)."""
        if self.grid is None:
            return [0]
        return [r for r in self.grid.all_ranks() if self.local_size(r) > 0]

    def describe(self) -> str:
        fmt = ", ".join(axis.describe() for axis in self.axes)
        onto = f" onto {self.grid.name}{self.grid.shape}" if self.grid else " [replicated]"
        return f"{self.name}({fmt}){onto}"

    @classmethod
    def replicated(
        cls, name: str, shape: tuple[int, ...], element_size: int = 4,
        lower_bounds: tuple[int, ...] = (),
    ) -> "ArrayDistribution":
        """A fully replicated array (the default mapping for undirected data)."""
        axes = [AxisMapping(extent=extent) for extent in shape]
        return cls(
            name=name,
            shape=shape,
            axes=axes,
            grid=None,
            element_size=element_size,
            lower_bounds=lower_bounds or tuple(1 for _ in shape),
        )
