"""HPF templates: abstract index spaces that data objects are aligned with.

HPF uses a two-level mapping (§2 of the paper): array elements are first
ALIGNed with a TEMPLATE, and the template is then DISTRIBUTEd onto a
PROCESSORS arrangement.  A :class:`Template` is therefore just a named,
shaped index space plus (once the DISTRIBUTE directive has been processed)
one :class:`~repro.distribution.distribute.DimDistribution` per axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .distribute import DimDistribution
from .processors import ProcessorGrid


@dataclass
class Template:
    """A named abstract index space (the target of ALIGN directives)."""

    name: str
    shape: tuple[int, ...]
    distributions: list[DimDistribution] = field(default_factory=list)
    grid: Optional[ProcessorGrid] = None
    # grid_axis[d] is the processor-grid axis that template axis d is mapped to,
    # or None when the axis is collapsed ('*').
    grid_axis: list[Optional[int]] = field(default_factory=list)

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def is_distributed(self) -> bool:
        return self.grid is not None and any(
            d.kind != "collapsed" for d in self.distributions
        )

    def describe(self) -> str:
        """Human-readable description like ``T(BLOCK, *) onto P(2,2)``."""
        if not self.distributions:
            fmt = ", ".join("*" for _ in self.shape)
        else:
            fmt = ", ".join(d.describe() for d in self.distributions)
        onto = f" onto {self.grid.name}{self.grid.shape}" if self.grid else ""
        return f"{self.name}({fmt}){onto}"

    def assign_distribution(
        self,
        distributions: list[DimDistribution],
        grid: ProcessorGrid,
    ) -> None:
        """Record the DISTRIBUTE directive, mapping distributed axes to grid axes in order."""
        if len(distributions) != self.rank:
            raise ValueError(
                f"template {self.name} has rank {self.rank} but DISTRIBUTE "
                f"gives {len(distributions)} formats"
            )
        self.distributions = list(distributions)
        self.grid = grid
        self.grid_axis = []
        next_axis = 0
        for dist in distributions:
            if dist.kind == "collapsed":
                self.grid_axis.append(None)
            else:
                if next_axis >= grid.rank:
                    raise ValueError(
                        f"DISTRIBUTE of {self.name} needs more processor-grid axes "
                        f"than {grid.name}{grid.shape} provides"
                    )
                self.grid_axis.append(next_axis)
                next_axis += 1
        # It is legal (and common) for the grid to have exactly as many axes as
        # there are distributed template axes; a 1-D grid under a single
        # distributed axis is the canonical case.

    def procs_along(self, axis: int) -> int:
        """Number of processors the given template axis is divided across."""
        if self.grid is None:
            return 1
        gaxis = self.grid_axis[axis] if axis < len(self.grid_axis) else None
        if gaxis is None:
            return 1
        return self.grid.shape[gaxis]


@dataclass
class TemplateSet:
    """All templates declared by one program unit."""

    templates: dict[str, Template] = field(default_factory=dict)

    def add(self, template: Template) -> None:
        self.templates[template.name.lower()] = template

    def get(self, name: str) -> Optional[Template]:
        return self.templates.get(name.lower())

    def __len__(self) -> int:
        return len(self.templates)

    def __iter__(self):
        return iter(self.templates.values())
