"""Abstract processor arrangements (the HPF PROCESSORS directive).

A :class:`ProcessorGrid` is a rectilinear arrangement of abstract processors.
The mapping of abstract processors to physical ranks is the usual row-major
linearisation; the simulator then maps ranks to hypercube node labels (the
implementation-dependent step the paper delegates to the target machine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

import numpy as np


@dataclass(frozen=True)
class ProcessorGrid:
    """A named rectilinear grid of abstract processors."""

    name: str
    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError("processor grid must have at least one dimension")
        if any(extent <= 0 for extent in self.shape):
            raise ValueError(f"invalid processor grid shape {self.shape}")

    @property
    def rank(self) -> int:
        """Number of grid dimensions."""
        return len(self.shape)

    @property
    def size(self) -> int:
        """Total number of abstract processors."""
        total = 1
        for extent in self.shape:
            total *= extent
        return total

    def coords(self, proc: int) -> tuple[int, ...]:
        """Row-major coordinates of linear rank *proc*."""
        if not 0 <= proc < self.size:
            raise ValueError(f"processor rank {proc} out of range for grid of size {self.size}")
        coords = []
        remainder = proc
        for extent in reversed(self.shape):
            coords.append(remainder % extent)
            remainder //= extent
        return tuple(reversed(coords))

    def linear_rank(self, coords: tuple[int, ...]) -> int:
        """Linear rank of grid coordinates (row-major)."""
        if len(coords) != self.rank:
            raise ValueError(f"expected {self.rank} coordinates, got {len(coords)}")
        rank = 0
        for coord, extent in zip(coords, self.shape):
            if not 0 <= coord < extent:
                raise ValueError(f"coordinate {coord} out of range for extent {extent}")
            rank = rank * extent + coord
        return rank

    def all_coords(self) -> list[tuple[int, ...]]:
        """All coordinates in linear-rank order."""
        return [self.coords(p) for p in range(self.size)]

    def coords_array(self) -> np.ndarray:
        """Row-major coordinates of every linear rank, shape ``(size, rank)``.

        The vectorised counterpart of calling :meth:`coords` per rank; row
        ``r`` equals ``coords(r)``.  Used by the simulator's vector engine to
        resolve per-rank grid positions in bulk.
        """
        idx = np.arange(self.size, dtype=np.int64)
        out = np.empty((self.size, self.rank), dtype=np.int64)
        for axis in range(self.rank - 1, -1, -1):
            extent = self.shape[axis]
            out[:, axis] = idx % extent
            idx //= extent
        return out

    def linear_ranks(self, coords: np.ndarray) -> np.ndarray:
        """Row-major linear ranks of a ``(n, rank)`` coordinate array.

        The vectorised counterpart of :meth:`linear_rank`; coordinates must
        already be in range (no bounds checking on the hot path).
        """
        coords = np.asarray(coords, dtype=np.int64)
        ranks = np.zeros(coords.shape[0], dtype=np.int64)
        for axis, extent in enumerate(self.shape):
            ranks = ranks * extent + coords[:, axis]
        return ranks

    def all_ranks(self) -> range:
        return range(self.size)

    def neighbors(self, proc: int, axis: int) -> tuple[int | None, int | None]:
        """Grid neighbours of *proc* along *axis* (lower, upper); None at boundaries."""
        coords = list(self.coords(proc))
        lower = upper = None
        if coords[axis] > 0:
            c = list(coords)
            c[axis] -= 1
            lower = self.linear_rank(tuple(c))
        if coords[axis] < self.shape[axis] - 1:
            c = list(coords)
            c[axis] += 1
            upper = self.linear_rank(tuple(c))
        return lower, upper

    def circular_neighbor(self, proc: int, axis: int, offset: int) -> int:
        """Neighbour of *proc* at circular distance *offset* along *axis*."""
        coords = list(self.coords(proc))
        coords[axis] = (coords[axis] + offset) % self.shape[axis]
        return self.linear_rank(tuple(coords))

    def axis_peers(self, proc: int, axis: int) -> list[int]:
        """All ranks that share every coordinate with *proc* except along *axis*."""
        coords = list(self.coords(proc))
        peers = []
        for value in range(self.shape[axis]):
            c = list(coords)
            c[axis] = value
            peers.append(self.linear_rank(tuple(c)))
        return peers

    def __iter__(self):
        return iter(range(self.size))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(d) for d in self.shape)
        return f"PROCESSORS {self.name}({dims})"


@dataclass
class ProcessorSet:
    """The set of processor grids declared by a program (usually exactly one)."""

    grids: dict[str, ProcessorGrid] = field(default_factory=dict)

    def add(self, grid: ProcessorGrid) -> None:
        self.grids[grid.name.lower()] = grid

    def get(self, name: str) -> ProcessorGrid | None:
        return self.grids.get(name.lower())

    def default(self) -> ProcessorGrid | None:
        """The first (and usually only) declared grid."""
        if not self.grids:
            return None
        return next(iter(self.grids.values()))

    def __len__(self) -> int:
        return len(self.grids)


def enumerate_subgrids(grid: ProcessorGrid) -> list[tuple[tuple[int, ...], int]]:
    """Enumerate (coords, rank) pairs of a grid, in rank order (testing helper)."""
    out = []
    for coords in product(*(range(extent) for extent in grid.shape)):
        out.append((coords, grid.linear_rank(coords)))
    out.sort(key=lambda item: item[1])
    return out
