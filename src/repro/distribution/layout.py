"""Pure index-algebra functions for HPF BLOCK / CYCLIC / collapsed layouts.

These functions are the single source of truth for ownership and local/global
index conversion.  The Phase-1 compiler uses them to partition computation
(owner computes), the interpretation engine uses them to size local iteration
spaces and messages, and the simulator uses them to carve NumPy blocks per
rank — so all three stages agree on data layout by construction.

All indices here are **0-based global indices** over an extent ``n`` mapped
onto ``p`` processors along one axis.  Callers convert from Fortran 1-based
(declared lower bound) indices before calling in.
"""

from __future__ import annotations

import math

import numpy as np


# ---------------------------------------------------------------------------
# BLOCK distribution
# ---------------------------------------------------------------------------


def block_size(n: int, p: int) -> int:
    """HPF standard block size: ceil(n / p)."""
    if p <= 0:
        raise ValueError("number of processors must be positive")
    if n <= 0:
        return 0
    return -(-n // p)


def block_owner(i: int, n: int, p: int) -> int:
    """Owner processor (0-based) of global index *i* under BLOCK distribution."""
    b = block_size(n, p)
    if b == 0:
        return 0
    return min(i // b, p - 1)


def block_bounds(proc: int, n: int, p: int) -> tuple[int, int]:
    """Half-open global index range [lo, hi) owned by *proc* under BLOCK."""
    b = block_size(n, p)
    lo = min(proc * b, n)
    hi = min(lo + b, n)
    return lo, hi


def block_local_count(proc: int, n: int, p: int) -> int:
    lo, hi = block_bounds(proc, n, p)
    return hi - lo


def block_global_to_local(i: int, n: int, p: int) -> int:
    """Local index of global index *i* on its owning processor."""
    b = block_size(n, p)
    owner = block_owner(i, n, p)
    return i - owner * b


def block_local_to_global(proc: int, local: int, n: int, p: int) -> int:
    b = block_size(n, p)
    return proc * b + local


def block_local_indices(proc: int, n: int, p: int) -> np.ndarray:
    """All global indices owned by *proc*, as a NumPy int array."""
    lo, hi = block_bounds(proc, n, p)
    return np.arange(lo, hi, dtype=np.int64)


def block_owner_array(idx: np.ndarray, n: int, p: int) -> np.ndarray:
    """Vectorised :func:`block_owner`: owner of every index in *idx*."""
    b = block_size(n, p)
    idx = np.asarray(idx, dtype=np.int64)
    if b == 0:
        return np.zeros(idx.shape, dtype=np.int64)
    return np.minimum(idx // b, p - 1)


# ---------------------------------------------------------------------------
# CYCLIC / CYCLIC(k) distribution
# ---------------------------------------------------------------------------


def cyclic_owner(i: int, p: int, block: int = 1) -> int:
    """Owner of global index *i* under CYCLIC(block)."""
    if block <= 0:
        raise ValueError("cyclic block size must be positive")
    return (i // block) % p


def cyclic_local_count(proc: int, n: int, p: int, block: int = 1) -> int:
    """Number of elements owned by *proc* under CYCLIC(block)."""
    if n <= 0:
        return 0
    full_cycles, rem = divmod(n, p * block)
    count = full_cycles * block
    # remaining `rem` elements start a new cycle at processor 0
    start = proc * block
    if rem > start:
        count += min(block, rem - start)
    return count


def cyclic_global_to_local(i: int, p: int, block: int = 1) -> int:
    cycle, offset = divmod(i, p * block)
    return cycle * block + (offset % block)


def cyclic_local_to_global(proc: int, local: int, p: int, block: int = 1) -> int:
    cycle, offset = divmod(local, block)
    return cycle * p * block + proc * block + offset


def cyclic_owner_array(idx: np.ndarray, p: int, block: int = 1) -> np.ndarray:
    """Vectorised :func:`cyclic_owner`: owner of every index in *idx*."""
    if block <= 0:
        raise ValueError("cyclic block size must be positive")
    idx = np.asarray(idx, dtype=np.int64)
    return (idx // block) % p


def cyclic_local_indices(proc: int, n: int, p: int, block: int = 1) -> np.ndarray:
    """All global indices owned by *proc* under CYCLIC(block), ascending."""
    if n <= 0:
        return np.zeros(0, dtype=np.int64)
    idx = np.arange(n, dtype=np.int64)
    mask = (idx // block) % p == proc
    return idx[mask]


# ---------------------------------------------------------------------------
# Collapsed ('*') dimension: the whole extent lives on every processor
# along this axis (the axis is not divided across the grid).
# ---------------------------------------------------------------------------


def collapsed_local_count(n: int) -> int:
    return max(n, 0)


def collapsed_local_indices(n: int) -> np.ndarray:
    return np.arange(max(n, 0), dtype=np.int64)


# ---------------------------------------------------------------------------
# Helpers shared by interpreter and simulator
# ---------------------------------------------------------------------------


def max_local_count(n: int, p: int, kind: str, block: int = 1) -> int:
    """Largest per-processor element count along one axis (load-balance bound)."""
    kind = kind.lower()
    if kind == "block":
        return block_size(n, p)
    if kind == "cyclic":
        return max(cyclic_local_count(q, n, p, block) for q in range(p)) if p > 0 else n
    if kind in ("*", "collapsed"):
        return collapsed_local_count(n)
    raise ValueError(f"unknown distribution kind {kind!r}")


def avg_local_count(n: int, p: int, kind: str) -> float:
    """Average per-processor element count along one axis."""
    kind = kind.lower()
    if kind in ("*", "collapsed"):
        return float(max(n, 0))
    return n / p if p else float(n)


def processor_factorizations(p: int, rank: int) -> list[tuple[int, ...]]:
    """All ways to factor *p* processors into a grid of the given rank.

    Used when a PROCESSORS directive gives only the total count, and by the
    directive-selection experiments that sweep over processor-grid shapes.
    """
    if rank == 1:
        return [(p,)]
    results: list[tuple[int, ...]] = []

    def rec(remaining: int, dims_left: int, prefix: tuple[int, ...]) -> None:
        if dims_left == 1:
            results.append(prefix + (remaining,))
            return
        for d in range(1, remaining + 1):
            if remaining % d == 0:
                rec(remaining // d, dims_left - 1, prefix + (d,))

    rec(p, rank, ())
    return results


def default_grid_shape(p: int, rank: int) -> tuple[int, ...]:
    """A near-square default processor grid shape (what the compiler picks by default)."""
    if rank == 1:
        return (p,)
    best: tuple[int, ...] | None = None
    best_score = math.inf
    for shape in processor_factorizations(p, rank):
        score = max(shape) - min(shape)
        if score < best_score:
            best_score = score
            best = shape
    assert best is not None
    return best
