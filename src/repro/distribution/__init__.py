"""Data-distribution machinery: the HPF two-level mapping as a reusable library.

Arrays are ALIGNed with TEMPLATEs, templates are DISTRIBUTEd (BLOCK / CYCLIC /
collapsed) onto PROCESSORS grids.  This package provides the index algebra for
that mapping — ownership, local extents, global↔local conversion — as pure,
property-tested functions and descriptors shared by the compiler, the
interpretation engine, and the iPSC/860 simulator.
"""

from . import layout
from .align import Alignment, AxisAlignment
from .distribute import ArrayDistribution, AxisMapping, DimDistribution
from .processors import ProcessorGrid, ProcessorSet, enumerate_subgrids
from .template import Template, TemplateSet

__all__ = [
    "layout",
    "Alignment",
    "AxisAlignment",
    "ArrayDistribution",
    "AxisMapping",
    "DimDistribution",
    "ProcessorGrid",
    "ProcessorSet",
    "enumerate_subgrids",
    "Template",
    "TemplateSet",
]
