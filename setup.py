"""Setuptools entry point.

The pyproject.toml [project] table is the canonical metadata; this file exists
so that editable installs work in offline environments whose setuptools lacks
the PEP 660 wheel hook.
"""

from setuptools import setup

setup()
