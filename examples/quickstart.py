#!/usr/bin/env python3
"""Quickstart: predict and "measure" an HPF/Fortran 90D program.

This walks the full path of the paper's framework on a small Laplace solver:

1. compile the HPF source (Phase 1: partition, sequentialise, insert comms),
2. interpret its performance on the abstracted iPSC/860 (Phase 2),
3. run it in the iPSC/860 simulator to obtain a "measured" time,
4. compare the two and print the interpreted performance profile.

Run with:  python examples/quickstart.py
"""

from repro import compile_source, interpret, ipsc860, program_profile, render_profile, simulate
from repro.output.report import render_comparison

SOURCE = """
      program heat
      integer, parameter :: n = 64
      integer, parameter :: maxiter = 20
      real, dimension(n, n) :: u, unew
      real :: err
      integer :: iter
!HPF$ PROCESSORS p(2, 2)
!HPF$ TEMPLATE t(n, n)
!HPF$ ALIGN u(i, j) WITH t(i, j)
!HPF$ ALIGN unew(i, j) WITH t(i, j)
!HPF$ DISTRIBUTE t(BLOCK, BLOCK) ONTO p
      forall (i = 1:n, j = 1:n) u(i, j) = 0.0
      forall (j = 1:n) u(1, j) = 100.0
      do iter = 1, maxiter
        forall (i = 2:n - 1, j = 2:n - 1) &
          unew(i, j) = 0.25 * (u(i - 1, j) + u(i + 1, j) + u(i, j - 1) + u(i, j + 1))
        err = maxval(abs(unew(2:n - 1, 2:n - 1) - u(2:n - 1, 2:n - 1)))
        forall (i = 2:n - 1, j = 2:n - 1) u(i, j) = unew(i, j)
      end do
      print *, err
      end program heat
"""


def main() -> None:
    nprocs = 4
    print("=== Phase 1: compilation (HPF -> loosely synchronous SPMD) ===")
    compiled = compile_source(SOURCE, name="heat", nprocs=nprocs)
    print(compiled.describe())
    print()

    machine = ipsc860(nprocs)
    print(f"=== Target machine: {machine.name} ===")
    print(machine.sag.describe())
    print()

    print("=== Phase 2: interpretation (estimated performance) ===")
    estimate = interpret(compiled, machine)
    print(render_profile(program_profile(estimate), top=8))
    print()

    print("=== Simulated execution ('measured' on the iPSC/860 simulator) ===")
    measured = simulate(compiled, machine)
    print(f"measured execution time : {measured.measured_time_s:.4f} s")
    print(f"per-rank times (ms)     : "
          f"{[round(t / 1000, 2) for t in measured.per_rank_us]}")
    print(f"messages / bytes moved  : {measured.comm_stats.messages} msgs, "
          f"{measured.comm_stats.bytes} bytes")
    print(f"program output          : {measured.printed}")
    print()

    print("=== Estimated vs measured ===")
    print(render_comparison(estimate.total, measured.measured_time_us, label="heat, 4 procs"))


if __name__ == "__main__":
    main()
