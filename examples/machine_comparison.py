"""Cross-machine sweep: the Laplace solver on every registered machine.

The Systems Module is the only machine-specific part of the framework, so
retargeting a study is a one-word change: ``get_machine("paragon", 8)``.
This example sweeps the (BLOCK,*) Laplace solver across all three built-in
targets — the iPSC/860 hypercube, a Paragon-class 2-D mesh, and a switched
workstation cluster — at p = 2, 4, 8, 16 and prints the predicted-time table
(the interpretation parse costs milliseconds per cell; no simulation runs).

Run with:  PYTHONPATH=src python examples/machine_comparison.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.system import get_machine, machine_names, machine_specs  # noqa: E402
from repro.workbench import run_machine_comparison  # noqa: E402


def main() -> None:
    print("Registered machine targets:")
    for spec in machine_specs():
        machine = get_machine(spec.name, 8)
        topo = machine.topology()
        print(f"  {spec.name:10s} {machine.name:12s} "
              f"topology={topo.kind:9s} diameter={topo.diameter()} "
              f"bisection={topo.bisection_links()}  {spec.description}")
    print()

    comparison = run_machine_comparison(
        key="laplace_block_star",
        size=64,
        proc_counts=(2, 4, 8, 16),
        machines=machine_names(),
    )
    print(comparison.to_table())
    print()
    for nprocs in comparison.proc_counts():
        print(f"  fastest predicted machine at p={nprocs:2d}: "
              f"{comparison.best_machine(nprocs)}")


if __name__ == "__main__":
    main()
