"""Tour of the performance advisor.

The paper's framework predicts; the advisor *recommends*.  Four stops:

1. diagnose-only: walk the interpreted metrics of the stock-option pricing
   model into located findings (the Figure 6/7 "Phase 1 shift communication"
   bottleneck, found automatically),
2. the full loop on the finance model: ``repro.advise`` proposes ranked
   configuration changes with predicted speedups and a simulator-
   corroborated confidence grade,
3. the §5.2.1 directive question: started on the worst Laplace distribution,
   the advisor's swap-distribution recommendation re-derives the choice the
   exhaustive Figure 4/5 sweep would make,
4. a genetic refinement pass: recombinations of the mutation axes (machine x
   nprocs at once) that no single edit reaches — all persisted to a
   ResultStore, so a re-run costs nothing.

Run with:  PYTHONPATH=src python examples/advisor_tour.py
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import advise, get_machine, interpret  # noqa: E402
from repro.advisor import diagnose  # noqa: E402
from repro.explore import ResultStore  # noqa: E402
from repro.suite import get_entry  # noqa: E402
from repro.workbench import run_advisor_study  # noqa: E402


def main() -> None:
    # -- 1. diagnosis only: the Figure 6/7 bottleneck, located automatically --
    entry = get_entry("finance")
    compiled = entry.compile(256, 4)
    result = interpret(compiled, get_machine("ipsc860", 4),
                       options=entry.interpreter_options(256))
    print("== findings for the stock-option pricing model (n=256, p=4)")
    for finding in diagnose(result, entry):
        print("  -", finding.describe())
    print()

    # -- 2. the full loop: ranked, explained, simulator-checked ---------------
    store_path = os.path.join(tempfile.mkdtemp(prefix="repro-advisor-"),
                              "advisor.jsonl")
    store = ResultStore(store_path)
    report = advise("finance", size=256, nprocs=4, store=store, simulate_top=2)
    print("== advise('finance')")
    print(report.render())
    print()

    # -- 3. the advisor re-derives the paper's directive selection ------------
    study = run_advisor_study(size=64, nprocs=4, store=store)
    print("== directive selection, advisor vs exhaustive sweep")
    print(study.to_table())
    print(f"advisor agrees with the sweep: {study.agrees}")
    print()

    # -- 4. genetic refinement finds multi-axis recombinations ----------------
    refined = advise("laplace_block_star", size=100, nprocs=8, store=store,
                     simulate_top=0, refine="genetic")
    print("== advise(..., refine='genetic')")
    print(refined.to_table(n=5))
    best = refined.best()
    print(f"best: {best.explanation()}")
    print(f"\nstore: {len(store)} scenario evaluations persisted at {store_path}")


if __name__ == "__main__":
    main()
