"""Tour of the design-space exploration subsystem.

The paper's workflow — tune HPF application design from interpretive
estimates instead of machine runs — scaled up from one question at a time to
declarative campaigns:

1. a grid campaign over (directives x problem size x nprocs x machine),
   persisted to a ResultStore and served from it on re-run,
2. a mesh/torus layout sweep via the ``topology_shapes`` axis (with the
   invalid shapes filtered, not failed),
3. a greedy hill-climb that finds the grid optimum in a fraction of the
   evaluations,
4. the report views: best-config table, Pareto frontier, and — after a
   ``mode="both"`` campaign — estimated-vs-simulated error bands.

Run with:  PYTHONPATH=src python examples/design_space_tour.py
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.explore import (  # noqa: E402
    ResultStore,
    ScenarioSpace,
    best_config_table,
    error_table,
    laplace_design_space,
    pareto_table,
    run_campaign,
)
from repro.output.report import format_us  # noqa: E402


def main() -> None:
    store_path = os.path.join(tempfile.mkdtemp(prefix="repro-tour-"),
                              "campaign.jsonl")

    # 1. exhaustive campaign: which directives / machine / p, per size -------
    space = laplace_design_space(
        sizes=(64, 128),
        proc_counts=(2, 4, 8),
        machines=("ipsc860", "paragon", "cluster", "torus-cluster"),
    )
    print(f"design space: {space.cardinality()} raw points")
    run = run_campaign(space, store=ResultStore(store_path), mode="predict")
    print(f"evaluated {run.evaluated} valid points "
          f"(store: {store_path})\n")
    print(best_config_table(run.results))
    print()
    print(pareto_table([r for r in run.results if r.point.size == 128],
                       title="Pareto frontier at size 128: time vs processors"))
    print()

    # 2. the same campaign again: served entirely from the store -------------
    rerun = run_campaign(space, store=ResultStore(store_path), mode="predict")
    print(f"re-run: {rerun.store_hits} store hits, "
          f"{rerun.evaluated} evaluations\n")

    # 3. sweeping physical mesh/torus layouts via make_topology(shape=) ------
    shapes = ScenarioSpace(
        apps=("laplace_block_block",),
        sizes=(64,),
        proc_counts=(8,),
        machines=("paragon", "torus-cluster"),
        topology_shapes=((1, 8), (2, 4), (4, 2), (8, 1)),
    )
    shaped = run_campaign(shapes, mode="predict")
    print("physical layout sweep (8 nodes):")
    for result in sorted(shaped.results, key=lambda r: r.objective_us):
        print(f"  {result.point.label():44s} {format_us(result.objective_us)}")
    print()

    # 4. hill-climb: the ArchGym-style search over the same space ------------
    climb = run_campaign(space, strategy="hillclimb", seed=4)
    best = run.best()
    print(f"hill-climb: {climb.evaluated} evaluations vs {run.evaluated} "
          f"for the grid")
    for step, result in enumerate(climb.trajectory):
        print(f"  step {step}: {result.point.label():44s} "
              f"{format_us(result.objective_us)}")
    print(f"  grid optimum: {best.point.label()} {format_us(best.objective_us)}")
    print()

    # 5. estimated-vs-simulated error bands on a small "both" campaign -------
    both = run_campaign(ScenarioSpace(
        apps=("laplace_block_star",), sizes=(64,), proc_counts=(2, 4, 8),
        machines=("ipsc860", "torus-cluster")), mode="both")
    print(error_table(both.results))


if __name__ == "__main__":
    main()
