"""Tour of the serving layer: predictions over HTTP.

The paper's interpretive predictor answers "how will this HPF program
perform?" in milliseconds — fast enough to sit behind a network endpoint
and serve a whole team's what-if queries from one warm process.  The tour
starts a real ``repro.serve`` server on an ephemeral localhost port and
walks its surface:

1. ``POST /predict`` for a suite application — the first request computes,
   the replay is served from the in-memory cache, and a request for the
   same program on a *different machine* reuses the compiled program
   (the compile/price stage split),
2. ``POST /predict`` with ad-hoc HPF source text,
3. ``POST /advise`` — the bounded advisor over the wire, ranked
   recommendations with predicted speedups,
4. ``POST /campaign`` — a small declarative sweep, best configuration back,
5. ``GET /metrics`` and ``GET /healthz`` — the observable surface: cache
   tiers, single-flight, batch sizes, request latencies.

Run with:  PYTHONPATH=src python examples/serve_tour.py
"""

import json
import os
import sys
import tempfile
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve import ServeOptions, ServerThread  # noqa: E402

LAPLACE_CYCLIC = """
      program laplace_cyclic
      integer, parameter :: n = 16
      real, dimension(n, n) :: u, unew
      real :: err
!HPF$ PROCESSORS p(4)
!HPF$ DISTRIBUTE u(CYCLIC, *) ONTO p
!HPF$ DISTRIBUTE unew(CYCLIC, *) ONTO p
      forall (i = 2:n-1, j = 2:n-1) unew(i, j) = 0.25 * (u(i-1, j) + u(i+1, j) + u(i, j-1) + u(i, j+1))
      err = maxval(abs(unew - u))
      print *, err
      end program laplace_cyclic
"""


def post(base: str, route: str, payload: dict) -> dict:
    request = urllib.request.Request(base + route,
                                     data=json.dumps(payload).encode())
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def get(base: str, route: str) -> bytes:
    with urllib.request.urlopen(base + route, timeout=60) as response:
        return response.read()


def main() -> None:
    store_path = os.path.join(tempfile.mkdtemp(prefix="repro-serve-tour-"),
                              "served.jsonl")
    options = ServeOptions(port=0, store_path=store_path)

    with ServerThread(options) as (host, port):
        base = f"http://{host}:{port}"
        print(f"server up at {base} (store: {store_path})\n")

        print("-- 1. /predict: suite app, then the cached replay --")
        body = {"app": "laplace_block_star", "size": 64, "nprocs": 8}
        first = post(base, "/predict", body)
        again = post(base, "/predict", body)
        print(f"laplace_block_star n=64 p=8 on ipsc860: "
              f"{first['predicted_time_us']:.0f} us "
              f"(served_from={first['served_from']})")
        print(f"same request again:                     "
              f"{again['predicted_time_us']:.0f} us "
              f"(served_from={again['served_from']})")
        other = post(base, "/predict", {**body, "machine": "paragon"})
        print(f"same program on paragon:                "
              f"{other['predicted_time_us']:.0f} us "
              f"(served_from={other['served_from']}; the compile stage "
              f"was reused, only pricing re-ran)\n")

        print("-- 2. /predict: ad-hoc HPF source --")
        adhoc = post(base, "/predict",
                     {"source": LAPLACE_CYCLIC, "nprocs": 4})
        print(f"ad-hoc CYCLIC laplace p=4: "
              f"{adhoc['predicted_time_us']:.0f} us "
              f"(key {adhoc['key'][:12]}...)\n")

        print("-- 3. /advise: the advisor over the wire --")
        advice = post(base, "/advise",
                      {"target": "laplace_block_star", "size": 64,
                       "nprocs": 8, "budget": 6})
        print(f"baseline {advice['baseline_us']:.0f} us, "
              f"{advice['candidates_evaluated']} candidates evaluated")
        for rec in advice["recommendations"][:3]:
            print(f"  {rec['predicted_speedup']:.2f}x  "
                  f"[{rec['confidence']}]  {rec['description']}")
        print()

        print("-- 4. /campaign: a declarative sweep --")
        sweep = post(base, "/campaign",
                     {"apps": ["laplace_block_star"], "sizes": [16, 64],
                      "proc_counts": [2, 4, 8], "name": "tour-sweep"})
        best = sweep["best"]
        print(f"{sweep['points']} points "
              f"({sweep['fresh_evaluations']} fresh, "
              f"{sweep['store_hits']} from the store); best: "
              f"{best['scenario']['nprocs']} procs on "
              f"{best['scenario']['machine']} at "
              f"{best['objective_us']:.0f} us\n")

        print("-- 5. the observable surface --")
        health = json.loads(get(base, "/healthz"))
        print(f"/healthz: {health['status']}, "
              f"{health['cache_entries']} cached responses, "
              f"{health['store_records']} store records, "
              f"{health['batches_dispatched']} batches dispatched")
        exposition = get(base, "/metrics").decode()
        wanted = ("repro_serve_cache_hits_total",
                  "repro_serve_computes_total",
                  "repro_stage_cache_hits_total")
        print("/metrics (selected series):")
        for line in exposition.splitlines():
            if line.startswith(wanted):
                print(f"  {line}")

    print("\nserver stopped; the store file keeps every computed result "
          "for the next process.")


if __name__ == "__main__":
    main()
