#!/usr/bin/env python3
"""Directive selection for the Laplace solver (the §5.2.1 / Figures 3-5 study).

The same Jacobi solver is compiled with the three candidate DISTRIBUTE
directives — (BLOCK,BLOCK), (BLOCK,*) and (*,BLOCK) — for 4 and 8 processors,
and the interpreted (estimated) execution times are compared against the
simulated (measured) ones.  The point of the original experiment: the
estimates are accurate enough to pick the right directives without ever
running on the expensive shared machine.

Run with:  python examples/directive_selection.py
"""

from repro.workbench import (
    VARIANT_LABELS,
    illustrate_distributions,
    run_laplace_study,
)


def main() -> None:
    print("=== Figure 3: the three data distributions on 4 processors ===")
    for illustration in illustrate_distributions(n=8, nprocs=4):
        print(illustration.render())
        print()

    for nprocs in (4, 8):
        print(f"=== Figure {'4' if nprocs == 4 else '5'}: Laplace solver on "
              f"{nprocs} processors ===")
        study = run_laplace_study(nprocs=nprocs, sizes=(16, 64, 128, 256))
        print(study.to_table())
        print()
        print(study.to_chart())
        print()

        for size in (64, 256):
            best_est = study.best_variant(size, by="estimated")
            best_meas = study.best_variant(size, by="measured")
            print(f"size {size}: interpretation selects {VARIANT_LABELS[best_est]}, "
                  f"measurement selects {VARIANT_LABELS[best_meas]}"
                  f"  ({'AGREE' if best_est == best_meas else 'DISAGREE'})")
        print(f"maximum |estimated - measured| error: {study.max_error_pct():.2f}%")
        print(f"directive selection by interpretation is reliable: "
              f"{study.selection_agreement()}")
        print()


if __name__ == "__main__":
    main()
