#!/usr/bin/env python3
"""Application performance debugging (the §5.2.2 / Figures 6-7 study).

The parallel stock-option pricing model is interpreted, its two application
phases are profiled (Phase 1 builds the distributed price lattice with shift
communication, Phase 2 computes call prices with no communication), the
hottest source lines are listed, and a ParaGraph-style interpretation trace is
produced — all without "running" the application on the target machine.

Run with:  python examples/performance_debugging.py
"""

from repro import QueryInterface, generate_trace, interpret, ipsc860, simulate
from repro.output import line_profile, render_profile
from repro.suite import get_entry
from repro.workbench import run_debugging_study


def main() -> None:
    size, nprocs = 256, 4
    entry = get_entry("finance")
    compiled = entry.compile(size, nprocs)
    machine = ipsc860(nprocs)

    print("=== Figure 6/7: per-phase interpreted performance profile ===")
    study = run_debugging_study(size=size, nprocs=nprocs)
    print(study.to_table())
    print()
    print(study.to_chart())
    print()
    print(f"bottleneck phase        : {study.dominant_phase()}")
    print(f"communication-free phase: {study.communication_free_phases()}")
    print()

    print("=== Per-line queries (output parse, second output form) ===")
    estimate = interpret(compiled, machine, options=entry.interpreter_options(size))
    simulation = simulate(compiled, machine)
    queries = QueryInterface(estimate, simulation)
    for line_result in queries.hottest_lines(5):
        print(line_result.describe())
    print()
    print("communication table:")
    for row in queries.communication_operations()[:8]:
        print("  " + row)
    print()
    print(queries.critical_variables())
    print()
    print(f"dominant cost component: {queries.bottleneck_type()}")
    print()

    print("=== Full per-line profile ===")
    print(render_profile(line_profile(estimate), top=10))
    print()

    print("=== ParaGraph-style interpretation trace (third output form) ===")
    trace = generate_trace(estimate)
    print(f"{len(trace.events)} trace events over {trace.nprocs} processors")
    print(trace.timeline(width=60))
    print()
    print("first trace records:")
    for event in trace.sorted_events()[:6]:
        print("  " + event.to_record())


if __name__ == "__main__":
    main()
