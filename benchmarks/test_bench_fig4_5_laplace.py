"""E5 / E8 — Figures 4 & 5 and the §5.2.1 directive-selection study.

For 4 and 8 processors the Laplace solver is swept over problem sizes for all
three distributions; the estimated and measured execution-time series (the
curves of Figures 4 and 5) are regenerated, and the directive-selection claims
are asserted: estimated and measured times pick the same distribution, the
2-D (BLOCK,BLOCK) distribution loses to the 1-D distributions at the larger
sizes, and the estimated-vs-measured error for this application stays small.
"""

import pytest

from repro.workbench import run_laplace_study

SIZES = (16, 64, 128, 256)


@pytest.mark.parametrize("nprocs", [4, 8])
def test_fig4_5_laplace_estimated_vs_measured(benchmark, nprocs):
    study = benchmark.pedantic(
        run_laplace_study, kwargs={"nprocs": nprocs, "sizes": SIZES},
        rounds=1, iterations=1,
    )

    print()
    print(study.to_table())
    print()
    print(study.to_chart())

    # all 3 distributions x all sizes were evaluated
    assert len(study.points) == 3 * len(SIZES)

    # execution time grows monotonically with problem size for every variant
    for variant in ("block_block", "block_star", "star_block"):
        times = [p.measured_s for p in sorted(
            (p for p in study.points if p.variant == variant), key=lambda p: p.size)]
        assert all(b > a for a, b in zip(times, times[1:])), variant

    # §5.2.1: estimated times select the same directives as measured times
    assert study.selection_agreement()

    # the (BLOCK,BLOCK) distribution pays for two communication axes; wherever
    # communication is a visible fraction of the run time (the small and medium
    # problem sizes) it is not the distribution either timing path selects.
    # At the largest size the three variants are compute-bound and separated by
    # less than the measurement noise, so no ranking is asserted there.
    for size in (s for s in SIZES if s <= 128):
        assert study.best_variant(size, by="measured") != "block_block"
        assert study.best_variant(size, by="estimated") != "block_block"

    # prediction error for the Laplace solver is small (paper: < 5%, and < 1%
    # at the directive-selection sizes)
    assert study.max_error_pct() < 8.0
    large = [p for p in study.points if p.size >= 128]
    assert max(p.abs_error_pct for p in large) < 5.0
