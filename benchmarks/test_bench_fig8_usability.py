"""E7 — Figure 8: experimentation time, interpreter vs iPSC/860.

Regenerates the workflow-cost comparison for evaluating the three Laplace
implementations: interpretation on a workstation versus
edit/cross-compile/transfer/load/run on the shared iPSC/860.  The paper
reports ≈10 minutes per implementation for the interpreter against ≈27-60
minutes for measurement; the assertions check that relationship (interpreter
several times cheaper, measurement path dominated by its fixed workflow
steps).
"""

from repro.workbench import run_usability_study


def test_fig8_experimentation_time(benchmark):
    study = benchmark.pedantic(
        run_usability_study,
        kwargs={"sizes": (64, 128, 256), "nprocs": 4, "runs_per_configuration": 3},
        rounds=1, iterations=1,
    )

    print()
    print(study.to_table())
    print()
    print(study.to_chart())

    assert len(study.entries) == 3

    # the interpreter workflow is cheaper for every implementation
    assert study.interpreter_always_cheaper()

    for entry in study.entries:
        # paper: interpretation took ~10 minutes per implementation
        assert 2.0 < entry.interpreter_minutes < 20.0
        # paper: measurement took >= ~27 minutes per implementation
        assert entry.measurement_minutes > 20.0
        # the advantage is a healthy multiple
        assert entry.speedup > 2.0

    # the slowest measured path is close to an hour, the fastest near half an hour
    assert study.max_measurement_minutes() >= study.min_measurement_minutes() >= 20.0
