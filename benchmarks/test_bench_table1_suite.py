"""E1 — Table 1: the validation application set.

Benchmarks Phase-1 compilation of the entire NPAC suite and regenerates the
Table 1 listing (name + description) plus the compiled SPMD node inventory.
"""

from repro.output.report import render_table
from repro.suite import all_entries


def _compile_whole_suite(nprocs: int = 4):
    compiled = {}
    for key, entry in all_entries().items():
        compiled[key] = entry.compile(entry.sizes[0], nprocs=nprocs)
    return compiled


def test_table1_suite_compilation(benchmark):
    compiled = benchmark.pedantic(_compile_whole_suite, rounds=1, iterations=1)

    entries = all_entries()
    assert len(entries) == 16, "Table 1 lists 16 validation applications"

    rows = []
    for key, entry in entries.items():
        program = compiled[key]
        counts = program.spmd.count_nodes()
        rows.append([entry.name, entry.category, entry.description[:50],
                     counts.get("LocalLoopNest", 0), counts.get("CommPhase", 0)])
    print()
    print(render_table(["Name", "Set", "Description", "loop nests", "comm phases"],
                       rows, title="Table 1: Validation Application Set"))

    # every application must produce a non-trivial SPMD program
    for key, program in compiled.items():
        assert program.spmd.nodes, f"{key}: empty node program"
        assert program.nprocs == 4
    # the data-parallel applications must contain at least one parallel loop nest
    assert all(
        compiled[key].spmd.count_nodes().get("LocalLoopNest", 0) >= 1
        for key in entries
    )
    # stencil/lattice codes must have detected communication
    for key in ("lfk1", "finance", "laplace_block_block"):
        counts = compiled[key].spmd.count_nodes()
        assert counts.get("CommPhase", 0) + counts.get("ShiftNode", 0) >= 1, key
