"""B-serve — the serving layer's latency and cached-throughput pins.

``repro.serve`` exists so a fleet of clients can share one warm model
process; its contract is that a *cached* prediction costs a dict lookup
plus HTTP framing, not a compile.  This benchmark drives a live server
over localhost sockets and pins:

* **latency** — sequential cached ``POST /predict`` round-trips on one
  keep-alive connection, reported as p50/p99 microseconds,
* **throughput** — pipelined keep-alive connections replaying one cached
  request, with a hard floor of ``THROUGHPUT_FLOOR`` (≥ 10k) cached
  predictions per second,
* **resilience overhead** — the per-request deadline/retry/shedding hooks
  (see ``docs/resilience.md``) with no fault plan installed must cost
  ≤ ``RESILIENCE_OVERHEAD_BUDGET`` on the cached p50, same budget
  discipline as the simulator's ``obs_overhead`` pin.

Each run emits ``benchmarks/results/BENCH_serve.json`` so the serving
trajectory is comparable across PRs::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_serve.py -s
"""

import json
import socket
import statistics
import time
from pathlib import Path

from repro.serve import ServeOptions, ServerThread

BODY = json.dumps({"app": "laplace_block_star", "size": 16, "nprocs": 4,
                   "machine": "ipsc860"}).encode()

#: The tentpole pin: cached predictions served per second, end to end
#: through real sockets and HTTP framing.  Measured ~40-60k/s on the dev
#: host; the floor leaves CI slack while staying an order of magnitude
#: above what per-request recomputation could reach.
THROUGHPUT_FLOOR = 10_000.0

#: Sequential cached round-trips must stay comfortably sub-millisecond.
LATENCY_P99_BUDGET_US = 5_000.0

LATENCY_SAMPLES = 2_000
PIPELINE_DEPTH = 64
THROUGHPUT_REQUESTS = 30_000

#: Ceiling on the relative cached-p50 cost of the resilience hooks
#: (deadline stamping, queue-depth checks, retry plumbing) when no fault
#: plan is installed — the disabled path must stay in the noise floor.
RESILIENCE_OVERHEAD_BUDGET = 0.03
RESILIENCE_OVERHEAD_SAMPLES = 400

RESULTS_JSON = Path(__file__).parent / "results" / "BENCH_serve.json"


def _merge_results_json(updates: dict) -> None:
    """Read-merge-write ``RESULTS_JSON`` so the latency/throughput and
    resilience-overhead tests can each refresh their own fields without
    clobbering the other's committed numbers."""
    data = {}
    if RESULTS_JSON.exists():
        data = json.loads(RESULTS_JSON.read_text())
    data.update(updates)
    RESULTS_JSON.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(data, indent=2) + "\n")


def _request_bytes(host: str, port: int) -> bytes:
    return (
        f"POST /predict HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        f"Content-Length: {len(BODY)}\r\n"
        f"\r\n"
    ).encode() + BODY


def _read_response(sock_file) -> bytes:
    """One HTTP response off a buffered socket file; returns the body."""
    line = sock_file.readline()
    if not line:
        raise ConnectionError("server closed the connection")
    length = 0
    while True:
        header = sock_file.readline()
        if header in (b"\r\n", b""):
            break
        name, _, value = header.partition(b":")
        if name.lower() == b"content-length":
            length = int(value)
    return sock_file.read(length)


def _connect(host: str, port: int) -> socket.socket:
    sock = socket.create_connection((host, port), timeout=30)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def _warm(host: str, port: int) -> None:
    """Prime every tier: the first request computes, the rest must hit."""
    request = _request_bytes(host, port)
    with _connect(host, port) as sock:
        fh = sock.makefile("rb")
        for _ in range(3):
            sock.sendall(request)
            body = _read_response(fh)
        assert json.loads(body)["served_from"] == "memory"


def _measure_latency(host: str, port: int) -> dict:
    request = _request_bytes(host, port)
    samples = []
    with _connect(host, port) as sock:
        fh = sock.makefile("rb")
        for _ in range(LATENCY_SAMPLES):
            started = time.perf_counter()
            sock.sendall(request)
            _read_response(fh)
            samples.append((time.perf_counter() - started) * 1e6)
    samples.sort()
    return {
        "samples": LATENCY_SAMPLES,
        "p50_us": round(statistics.median(samples), 1),
        "p99_us": round(samples[int(len(samples) * 0.99) - 1], 1),
        "mean_us": round(statistics.fmean(samples), 1),
    }


def _measure_throughput(host: str, port: int) -> dict:
    """Pipelined replay: keep ``PIPELINE_DEPTH`` requests in flight on one
    keep-alive connection so framing, not round-trip stalls, is measured."""
    request = _request_bytes(host, port)
    block = request * PIPELINE_DEPTH
    blocks = THROUGHPUT_REQUESTS // PIPELINE_DEPTH
    total = blocks * PIPELINE_DEPTH
    with _connect(host, port) as sock:
        fh = sock.makefile("rb")
        started = time.perf_counter()
        for _ in range(blocks):
            sock.sendall(block)
            for _ in range(PIPELINE_DEPTH):
                body = _read_response(fh)
        elapsed = time.perf_counter() - started
    assert json.loads(body)["served_from"] == "memory"
    return {
        "requests": total,
        "pipeline_depth": PIPELINE_DEPTH,
        "wall_s": round(elapsed, 4),
        "predictions_per_s": round(total / elapsed, 1),
    }


def test_serve_cached_latency_and_throughput():
    """The committed serving numbers: p50/p99 latency + the ≥10k/s floor."""
    with ServerThread(ServeOptions(port=0, cache_size=64)) as (host, port):
        _warm(host, port)
        latency = _measure_latency(host, port)
        throughput = _measure_throughput(host, port)

    print()
    print(f"serve cached /predict: p50 {latency['p50_us']:.0f} us, "
          f"p99 {latency['p99_us']:.0f} us over {latency['samples']} "
          f"sequential round-trips")
    print(f"serve cached throughput: {throughput['predictions_per_s']:,.0f} "
          f"predictions/s ({throughput['requests']} requests, pipeline "
          f"depth {throughput['pipeline_depth']})")

    _merge_results_json({
        "schema": 1,
        "benchmark": "serve",
        "scenario": json.loads(BODY),
        "latency": latency,
        "throughput": throughput,
        "floor_predictions_per_s": THROUGHPUT_FLOOR,
    })

    assert latency["p99_us"] <= LATENCY_P99_BUDGET_US, \
        f"cached p99 latency {latency['p99_us']:.0f} us over budget " \
        f"({LATENCY_P99_BUDGET_US:.0f} us)"
    assert throughput["predictions_per_s"] >= THROUGHPUT_FLOOR, \
        f"cached throughput {throughput['predictions_per_s']:,.0f}/s " \
        f"under the {THROUGHPUT_FLOOR:,.0f}/s floor"


def _cached_p50_us(host: str, port: int) -> float:
    request = _request_bytes(host, port)
    samples = []
    with _connect(host, port) as sock:
        fh = sock.makefile("rb")
        for _ in range(RESILIENCE_OVERHEAD_SAMPLES):
            started = time.perf_counter()
            sock.sendall(request)
            _read_response(fh)
            samples.append((time.perf_counter() - started) * 1e6)
    return statistics.median(samples)


def test_resilience_hooks_disabled_overhead_cached_p50():
    """Deadline/retry/shedding hooks with no fault plan cost <= 3% on
    cached p50.

    Two live servers — one with every resilience knob engaged (a generous
    but real per-request deadline, retry budget, bounded queue), one with
    the knobs at their do-nothing defaults — answer the same cached
    request in interleaved order-flipping pairs, the ``obs_overhead``
    discipline: the overhead is the best **per-pair** p50 ratio, so host
    drift cancels within the (time-adjacent) pair instead of biasing
    whichever server a fixed ordering always measured last.
    """
    plain = ServerThread(ServeOptions(port=0, cache_size=64))
    hooked = ServerThread(ServeOptions(
        port=0, cache_size=64, request_deadline_ms=60_000.0,
        compute_retries=2, queue_max=256, retry_after_s=1.0))
    with plain as (plain_host, plain_port), hooked as (hook_host, hook_port):
        _warm(plain_host, plain_port)
        _warm(hook_host, hook_port)
        plain_p50 = hooked_p50 = overhead = float("inf")
        for _round in range(5):
            for pair in range(4):
                if pair % 2 == 0:
                    plain_med = _cached_p50_us(plain_host, plain_port)
                    hooked_med = _cached_p50_us(hook_host, hook_port)
                else:
                    hooked_med = _cached_p50_us(hook_host, hook_port)
                    plain_med = _cached_p50_us(plain_host, plain_port)
                plain_p50 = min(plain_p50, plain_med)
                hooked_p50 = min(hooked_p50, hooked_med)
                overhead = min(overhead, hooked_med / plain_med - 1.0)
            if overhead <= RESILIENCE_OVERHEAD_BUDGET:
                break

    print(f"\nserve resilience overhead (cached p50): "
          f"{plain_p50:.1f} us plain, {hooked_p50:.1f} us with hooks "
          f"({overhead:+.2%})")
    _merge_results_json({
        "resilience_overhead": {
            "plain_p50_us": round(plain_p50, 1),
            "hooked_p50_us": round(hooked_p50, 1),
            "overhead_pct": round(overhead * 100.0, 2),
            "budget_pct": RESILIENCE_OVERHEAD_BUDGET * 100.0,
        },
    })
    assert overhead <= RESILIENCE_OVERHEAD_BUDGET, \
        f"resilience hooks cost {overhead:.2%} on cached p50 " \
        f"(budget {RESILIENCE_OVERHEAD_BUDGET:.0%})"
