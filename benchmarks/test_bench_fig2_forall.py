"""E3 — Figure 2: abstraction of the forall statement.

Compiles the paper's example

    forall (K = 2:N-1, V(K) .GT. 0)  X(K+1) = X(K) + X(K-1)

and checks that Phase 1 produces the three-level structure (gather-in
communication, local computation, no final write-back) and Phase 2 abstracts
it as Seq -> Comm -> IterD containing a CondtD for the mask.
"""

from repro.workbench import run_forall_abstraction


def test_fig2_forall_abstraction(benchmark):
    result = benchmark.pedantic(run_forall_abstraction, rounds=1, iterations=1)

    print()
    print(result.describe())

    # Phase 1: Seq / Comm / IterD structure, in that order
    kinds = result.phase1_levels
    assert any(level.startswith("Seq") for level in kinds)
    assert any(level.startswith("Comm(gather-in)") for level in kinds)
    assert any(level.startswith("IterD") for level in kinds)
    gather_pos = next(i for i, k in enumerate(kinds) if k.startswith("Comm(gather-in)"))
    iter_pos = next(i for i, k in enumerate(kinds) if k.startswith("IterD"))
    assert gather_pos < iter_pos, "off-processor data is fetched before local computation"

    # the stencil references X(K) and X(K-1) relative to the owner of X(K+1)
    assert set(result.shift_offsets) == {-1, -2}

    # the mask becomes a CondtD nested inside the IterD
    assert result.has_mask_condition
    assert "CondtD" in result.aau_types
    assert "IterD" in result.aau_types

    # "the final communication phase is not required as no off-processor data
    #  needs to be written"
    assert not result.needs_final_communication
