"""E6 — Figures 6 & 7: application performance debugging on the Finance model.

Regenerates the per-phase computation / communication / overhead profile of
the parallel stock-option pricing application (Procs = 4, Size = 256) and
asserts the structural claims of §5.2.2: Phase 1 (lattice creation) contains
the application's communication; Phase 2 (call-price computation) requires
none.
"""

from repro.workbench import run_debugging_study


def test_fig6_7_finance_phase_profile(benchmark):
    study = benchmark.pedantic(
        run_debugging_study, kwargs={"size": 256, "nprocs": 4}, rounds=1, iterations=1
    )

    print()
    print(study.to_table())
    print()
    print(study.to_chart())

    labels = [p.label for p in study.phases]
    assert labels == ["Phase 1", "Phase 2"]

    phase1 = study.phase("Phase 1")
    phase2 = study.phase("Phase 2")

    # Figure 6: Phase 1 creates the lattice with shift communication
    assert phase1.estimated.communication > 0.0
    assert phase1.measured.communication > 0.0

    # "Phase 2, which requires no communication, computes the call prices"
    assert phase2.estimated.communication == 0.0
    assert phase2.measured.communication == 0.0
    assert "Phase 2" in study.communication_free_phases()

    # Phase 1 dominates the application's execution time (it iterates the lattice)
    assert study.dominant_phase() == "Phase 1"
    assert phase1.estimated.total > phase2.estimated.total

    # both phases do real computation
    assert phase1.estimated.computation > 0.0
    assert phase2.estimated.computation > 0.0

    # estimated and measured per-phase breakdowns agree reasonably well
    for phase in study.phases:
        if phase.measured.total > 0:
            error = abs(phase.estimated.total - phase.measured.total) / phase.measured.total
            assert error < 0.15, f"{phase.label}: {error:.2%}"
