"""B-shard — sharded-campaign throughput against the serial baseline.

``repro.explore.sharding`` exists so a design-space sweep too large for one
process can fan out over workers without giving up the store's determinism
guarantees.  This benchmark sweeps a ≥10k-point Laplace space twice —

* **serial** — plain :func:`run_campaign` with ``executor="serial"``,
* **sharded** — :func:`run_sharded_campaign` with ``shards=4`` forked
  workers streaming to per-shard segments, then merging,

— cross-checks the merged store against the serial one with
:func:`store_diff` (the correctness half of the claim: fan-out must not
change a single record), and emits
``benchmarks/results/BENCH_campaign_shard.json`` so the scaling trajectory
is comparable across PRs::

    REPRO_SLOW=1 PYTHONPATH=src python -m pytest \
        benchmarks/test_bench_campaign_shard.py -s

The ≥``SPEEDUP_FLOOR``× throughput floor is only enforceable where the
hardware can express it: a 4-way fan-out cannot beat serial on a 1- or
2-CPU container, so the floor assertion is conditional on
``os.cpu_count() >= 4`` and the JSON records ``floor_enforced`` so a
reader of the committed numbers knows which regime produced them.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.explore import (
    ScenarioSpace,
    run_campaign,
    run_sharded_campaign,
    store_diff,
)
from repro.explore.store import ResultStore

SHARDS = 4

#: Throughput floor for the 4-shard run over the serial baseline, enforced
#: only on hosts with at least ``SHARDS`` CPUs (see module docstring).
SPEEDUP_FLOOR = 3.0

RESULTS_JSON = Path(__file__).parent / "results" / "BENCH_campaign_shard.json"


def _bench_space() -> ScenarioSpace:
    """A ≥10k-point space: 2 apps x 417 sizes x 6 proc counts x 2 machines."""
    return ScenarioSpace(
        apps=("laplace_block_star", "laplace_block_block"),
        sizes=tuple(range(16, 16 + 4 * 417, 4)),
        proc_counts=(2, 4, 8, 16, 32, 64),
        machines=("ipsc860", "paragon"),
    )


@pytest.mark.slow
def test_sharded_campaign_throughput(tmp_path):
    """The committed scaling numbers: serial vs 4-shard wall time + drift."""
    space = _bench_space()
    points, rejected = space.expand_with_rejects()
    assert len(points) >= 10_000, \
        f"benchmark space shrank to {len(points)} points"

    serial_store = str(tmp_path / "serial.jsonl")
    started = time.perf_counter()
    serial_run = run_campaign(space, name="bench-serial",
                              store=ResultStore(serial_store),
                              executor="serial")
    serial_wall = time.perf_counter() - started
    assert serial_run.evaluated == len(points)

    shard_store = str(tmp_path / "sharded.jsonl")
    started = time.perf_counter()
    shard_run = run_sharded_campaign(space, shards=SHARDS,
                                     name="bench-sharded", store=shard_store,
                                     max_workers=SHARDS, chunk_size=256,
                                     keep_segments=False)
    shard_wall = time.perf_counter() - started
    assert shard_run.evaluated == len(points)
    assert shard_run.merge_diff is not None
    assert shard_run.merge_diff.drifted == []

    # fan-out must not change a single record vs the serial sweep
    diff = store_diff(ResultStore(serial_store).results(),
                      ResultStore(shard_store).results())
    assert diff.drifted == [] and not diff.added and not diff.removed
    assert diff.compared == len(points)

    cpus = os.cpu_count() or 1
    speedup = serial_wall / shard_wall
    floor_enforced = cpus >= SHARDS
    record = {
        "schema": 1,
        "benchmark": "campaign_shard",
        "points": len(points),
        "rejected": len(rejected),
        "shards": SHARDS,
        "cpus": cpus,
        "serial": {
            "wall_s": round(serial_wall, 3),
            "points_per_s": round(len(points) / serial_wall, 1),
        },
        "sharded": {
            "wall_s": round(shard_wall, 3),
            "points_per_s": round(len(points) / shard_wall, 1),
        },
        "speedup": round(speedup, 3),
        "merged_drift": len(diff.drifted),
        "speedup_floor": SPEEDUP_FLOOR,
        "floor_enforced": floor_enforced,
    }

    print()
    print(f"campaign shard bench: {len(points)} points on {cpus} CPUs")
    print(f"  serial : {serial_wall:8.2f} s "
          f"({record['serial']['points_per_s']:,.0f} pts/s)")
    print(f"  {SHARDS} shards: {shard_wall:8.2f} s "
          f"({record['sharded']['points_per_s']:,.0f} pts/s)")
    print(f"  speedup: {speedup:.2f}x "
          f"(floor {SPEEDUP_FLOOR:.1f}x "
          f"{'enforced' if floor_enforced else 'not enforced: < 4 CPUs'})")

    RESULTS_JSON.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(record, indent=2) + "\n")

    if floor_enforced:
        assert speedup >= SPEEDUP_FLOOR, \
            f"{SHARDS}-shard speedup {speedup:.2f}x under the " \
            f"{SPEEDUP_FLOOR:.1f}x floor on a {cpus}-CPU host"
