"""E4 — Figure 3: the Laplace solver's three candidate data distributions.

Regenerates the ownership maps of the (BLOCK,BLOCK), (BLOCK,*) and (*,BLOCK)
distributions of the template on 4 processors and checks their shapes.
"""

import numpy as np

from repro.workbench import illustrate_distributions


def test_fig3_laplace_distributions(benchmark):
    illustrations = benchmark.pedantic(
        illustrate_distributions, kwargs={"n": 8, "nprocs": 4}, rounds=1, iterations=1
    )

    print()
    for illustration in illustrations:
        print(illustration.render())
        print()

    by_variant = {ill.variant: ill for ill in illustrations}
    assert set(by_variant) == {"block_block", "block_star", "star_block"}

    bb = np.array(by_variant["block_block"].owner_map)
    bs = np.array(by_variant["block_star"].owner_map)
    sb = np.array(by_variant["star_block"].owner_map)

    # every distribution uses all four processors and partitions all elements
    for owners in (bb, bs, sb):
        assert set(np.unique(owners)) == {0, 1, 2, 3}
        counts = np.bincount(owners.ravel(), minlength=4)
        assert counts.max() == counts.min(), "BLOCK distributions are balanced"

    # (BLOCK,BLOCK): 2x2 quadrants — constant within each quadrant
    assert bb[0, 0] != bb[0, -1] and bb[0, 0] != bb[-1, 0]
    assert np.unique(bb[:4, :4]).size == 1

    # (BLOCK,*): whole rows per processor — constant along each row
    assert all(np.unique(bs[i, :]).size == 1 for i in range(bs.shape[0]))

    # (*,BLOCK): whole columns per processor — constant along each column
    assert all(np.unique(sb[:, j]).size == 1 for j in range(sb.shape[1]))

    # grid shapes match the paper's Figure 3 arrangement
    assert by_variant["block_block"].grid_shape == (2, 2)
    assert by_variant["block_star"].grid_shape == (4,)
    assert by_variant["star_block"].grid_shape == (4,)
