"""E2 — Table 2: accuracy of the performance prediction framework.

Sweeps every application of the validation set over problem sizes and system
sizes (1-8 processors), compares interpreted (estimated) against simulated
(measured) execution times, and regenerates the Table 2 rows (min/max absolute
error %) next to the error band the paper published.

The default sweep uses the first two problem sizes per application so the
benchmark completes in a couple of minutes; set REPRO_FULL_TABLE2=1 in the
environment to run the paper's full size range.
"""

import os

from repro.workbench import run_accuracy_study

FULL = os.environ.get("REPRO_FULL_TABLE2", "0") == "1"


def _run_table2():
    return run_accuracy_study(quick=not FULL, proc_counts=(1, 2, 4, 8))


def test_table2_prediction_accuracy(benchmark):
    report = benchmark.pedantic(_run_table2, rounds=1, iterations=1)

    print()
    print(report.to_table())

    assert len(report.rows) == 16

    # Headline shape claims of §5.1:
    #  * worst-case interpreted error stays within a few tens of percent,
    #  * best cases are well under 1%,
    #  * the largest errors come from the benchmark kernels written to task the
    #    compiler (LFK 2 / LFK 14), not from the full applications.
    assert report.worst_case_error() < 35.0, report.to_table()
    assert report.best_case_error() < 1.0

    taxing = {"lfk2", "lfk14"}
    worst_row = max(report.rows, key=lambda r: r.max_error_pct)
    assert worst_row.key in taxing or worst_row.max_error_pct < 20.0

    applications = [r for r in report.rows if r.key in
                    ("pi", "nbody", "finance", "laplace_block_block",
                     "laplace_block_star", "laplace_star_block")]
    assert all(row.max_error_pct < 15.0 for row in applications), \
        "full applications should predict within ~10-15%"

    # every row must actually contain sweep points
    assert all(row.points for row in report.rows)
