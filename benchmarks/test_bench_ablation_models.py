"""A1 — ablation of the interpreter's fidelity knobs (design-choice study).

Disables the memory-hierarchy model and perturbs the mask model, then checks
that the full model is at least as accurate (on average) as the ablated
configurations — the quantitative justification for the modelling choices
DESIGN.md calls out.
"""

from repro.workbench import run_model_ablation


def test_ablation_interpreter_models(benchmark):
    report = benchmark.pedantic(run_model_ablation, rounds=1, iterations=1)

    print()
    print(report.to_table())

    errors = report.errors_by_label()
    print()
    for label, value in sorted(errors.items(), key=lambda kv: kv[1]):
        print(f"  mean abs error {value:6.2f}%  {label}")

    assert "full model" in errors
    full = errors["full model"]

    # the full model is reasonable in absolute terms
    assert full < 10.0

    # removing the memory model or assuming a flat 50% hit ratio should not
    # beat the full model (it may tie on comm-bound applications)
    assert errors["flat hit ratio 0.5"] >= full - 0.5
    assert errors["no memory model"] >= full - 0.5

    # a wrong mask assumption hurts the masked kernels
    assert errors["mask assumed half true"] >= errors["mask assumed always true"] - 0.5
