"""E-scale — execution-core scaling: the vector engine vs the loop oracle.

The simulator's ``loop`` engine walks every per-rank quantity in python
loops, which made large partitions (p ≥ 64 — the CM-5-class and
modern-cluster regime) the hot path of every campaign.  The ``vector``
engine keeps per-rank state — including the clocks of whole communication
phases — in arrays and prices link-disjoint network stages with one
vectorised expression each.

This benchmark pins the tentpole claims on the ``modern-cluster`` target:

* both engines produce identical per-rank times (within 1e-9; in practice
  bit-for-bit) at p ∈ {64, 128, 256, 1024}, and
* the vector engine is at least 6× faster in wall-clock at p = 256 (the
  PR-4 batched-drain core measured ~4× there, so this pin certifies the
  array-clock core's ≥2× on top), and
* with the counter-keyed noise engine (one vectorised draw per phase
  instead of per-rank sequential draws) the speedup at p = 1024 is at
  least 20.3× — 1.3× over the PR-5 baseline's 15.6× — and the table now
  extends to p = 4096 and p = 8192 with a ≥25× floor, and
* p = 1024 and p = 4096 contention-free (crossbar fabric) simulations
  complete inside their wall-clock budgets.

Each run also emits ``benchmarks/results/BENCH_simulator_scale.json`` —
machine-readable per-p wall-clocks and speedups — so the performance
trajectory is comparable across PRs, and regenerates the README
"Performance" table from the same rows (run with ``-s`` to see it)::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_simulator_scale.py -s
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.compiler import compile_source
from repro.simulator import SimulatorOptions, simulate
from repro.suite import get_entry
from repro.system import get_machine

MACHINE = "modern-cluster"
APP = "laplace_block_star"
SIZE = 64           # grid edge: keeps the (engine-shared) data plane small
MAXITER = 20.0      # more Jacobi iterations -> more per-rank/network phases

#: Wall-clock budgets for single vector-engine runs on the crossbar
#: (contention-free) fabric.  Measured ~0.11 s at p=1024 and ~0.36 s at
#: p=4096; the budgets leave CI slack.
P1024_BUDGET_SECONDS = 5.0
P4096_BUDGET_SECONDS = 10.0

#: Speedup floors for the table rows: ``p -> (loop repeats, floor)``.  The
#: loop oracle at p >= 4096 takes tens of seconds per run, so those rows are
#: measured once instead of best-of-3.
SPEEDUP_ROWS = {
    64: (3, 1.0),
    256: (3, 6.0),
    1024: (3, 20.3),    # >= 1.3x over the PR-5 baseline's 15.6x
    4096: (1, 25.0),
    8192: (1, 25.0),
}

#: Ceiling on the relative wall-clock cost of *enabled* ``repro.obs``
#: tracing for one p=256 vector run (the disabled no-op path is one
#: attribute load + call per site and is covered by the speedup floors
#: above staying put).
OBS_OVERHEAD_BUDGET = 0.03
OBS_OVERHEAD_NPROCS = 256

RESULTS_JSON = Path(__file__).parent / "results" / "BENCH_simulator_scale.json"


def _merge_results_json(updates: dict) -> None:
    """Read-merge-write ``RESULTS_JSON`` so the speedup-table and
    obs-overhead tests can each refresh their own fields without clobbering
    the other's committed numbers."""
    data = {}
    if RESULTS_JSON.exists():
        data = json.loads(RESULTS_JSON.read_text())
    data.update(updates)
    RESULTS_JSON.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(data, indent=2) + "\n")


def _compiled(nprocs: int):
    entry = get_entry(APP)
    params = entry.params_for(SIZE)
    params["maxiter"] = MAXITER
    return compile_source(entry.source, nprocs=nprocs, params=params)


def _run(engine: str, compiled, machine):
    return simulate(compiled, machine, options=SimulatorOptions(engine=engine))


def _best_wall(engine: str, compiled, machine, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        _run(engine, compiled, machine)
        best = min(best, time.perf_counter() - started)
    return best


def render_performance_table(rows) -> list[str]:
    """The README "Performance" table lines for ``(p, loop_s, vector_s, speedup)`` rows."""
    lines = [
        "| p    | loop engine | vector engine | speedup |",
        "|------|-------------|---------------|---------|",
    ]
    for nprocs, loop_wall, vector_wall, speedup in rows:
        lines.append(
            f"| {nprocs:<4} | {loop_wall * 1e3:8.0f} ms | "
            f"{vector_wall * 1e3:10.0f} ms | {speedup:6.1f}x |")
    return lines


@pytest.mark.parametrize("nprocs", [64, 128, 256, 1024],
                         ids=["p64", "p128", "p256", "p1024"])
def test_engine_parity_at_scale(nprocs):
    """Vector and loop engines agree on every per-rank time within 1e-9."""
    compiled = _compiled(nprocs)
    machine = get_machine(MACHINE, nprocs)
    loop = _run("loop", compiled, machine)
    vector = _run("vector", compiled, machine)

    loop_ranks = np.asarray(loop.per_rank_us)
    vector_ranks = np.asarray(vector.per_rank_us)
    worst = float(np.max(np.abs(loop_ranks - vector_ranks)))
    assert worst <= 1e-9, f"per-rank divergence {worst} at p={nprocs}"
    assert vector.measured_time_us == loop.measured_time_us
    assert vector.array_checksum == loop.array_checksum
    assert vector.engine == "vector" and loop.engine == "loop"


def test_p1024_contention_free_within_budget():
    """One p=1024 run on the crossbar fabric stays inside the budget.

    The modern-cluster topology advertises ``link_disjoint_paths``, so every
    collective stage takes the array drain's vectorised fast path — this is
    the "p ≥ 1024 unlocked" claim in wall-clock form.
    """
    compiled = _compiled(1024)
    machine = get_machine(MACHINE, 1024)
    assert machine.topology(1024).link_disjoint_paths
    started = time.perf_counter()
    result = _run("vector", compiled, machine)
    elapsed = time.perf_counter() - started
    assert len(result.per_rank_us) == 1024
    assert elapsed <= P1024_BUDGET_SECONDS, \
        f"p=1024 vector run took {elapsed:.2f}s (budget {P1024_BUDGET_SECONDS}s)"


def test_p4096_vector_smoke_within_budget():
    """One p=4096 vector run finishes inside the CI time budget.

    This is the check.sh smoke for the counter-keyed noise engine: at this
    scale the per-rank sequential draws of the legacy scheme dominated the
    wall; the keyed engine prices each noise phase in one vectorised call.
    """
    compiled = _compiled(4096)
    machine = get_machine(MACHINE, 4096)
    started = time.perf_counter()
    result = _run("vector", compiled, machine)
    elapsed = time.perf_counter() - started
    assert len(result.per_rank_us) == 4096
    assert elapsed <= P4096_BUDGET_SECONDS, \
        f"p=4096 vector run took {elapsed:.2f}s (budget {P4096_BUDGET_SECONDS}s)"


def test_vector_engine_speedup_table():
    """The per-p speedup floors, the README table, and the JSON trajectory."""
    rows = []
    for nprocs, (repeats, _floor) in SPEEDUP_ROWS.items():
        compiled = _compiled(nprocs)
        machine = get_machine(MACHINE, nprocs)
        loop_wall = _best_wall("loop", compiled, machine, repeats=repeats)
        vector_wall = _best_wall("vector", compiled, machine)
        rows.append((nprocs, loop_wall, vector_wall, loop_wall / vector_wall))

    print()
    print(f"simulator wall-clock, {APP} n={SIZE} maxiter={int(MAXITER)} "
          f"on {MACHINE} (best of 3; single run at p >= 4096):")
    for line in render_performance_table(rows):
        print(line)

    _merge_results_json({
        "schema": 1,
        "benchmark": "simulator_scale",
        "machine": MACHINE,
        "app": APP,
        "size": SIZE,
        "maxiter": MAXITER,
        "rows": [
            {"p": nprocs,
             "loop_wall_s": round(loop_wall, 4),
             "vector_wall_s": round(vector_wall, 4),
             "speedup": round(speedup, 2)}
            for nprocs, loop_wall, vector_wall, speedup in rows
        ],
    })

    by_p = {row[0]: row for row in rows}
    for nprocs, (_repeats, floor) in SPEEDUP_ROWS.items():
        speedup = by_p[nprocs][3]
        assert speedup >= floor, \
            f"vector engine speedup at p={nprocs} is {speedup:.2f}x " \
            f"(floor {floor}x)"


def _paired_overhead(baseline_setup, candidate_setup):
    """Relative wall-clock cost of *candidate* vs *baseline* at p=256.

    Both modes are timed in *interleaved* pairs whose order flips every
    pair, and the overhead is the best (lowest) **per-pair** ratio: the
    two runs of a pair are adjacent in time, so host drift (CI
    neighbours, thermal throttling after the speedup-table runs, GC
    cadence) cancels within the pair instead of biasing whichever mode a
    fixed ordering always measured last.  One undisturbed pair is enough
    to prove the hooks are free; a *real* regression inflates every
    pair's ratio and survives the min.  Keeps adding pairs until the
    measured overhead is inside the budget (or the round cap says the
    regression is real, not scheduler noise).

    Returns ``(baseline_wall, candidate_wall, overhead)`` — best-of walls
    for reporting, best-pair overhead for the assertion.
    """
    compiled = _compiled(OBS_OVERHEAD_NPROCS)
    machine = get_machine(MACHINE, OBS_OVERHEAD_NPROCS)
    _run("vector", compiled, machine)          # warm caches / imports

    def timed(setup):
        setup()
        started = time.perf_counter()
        _run("vector", compiled, machine)
        return time.perf_counter() - started

    baseline_wall = candidate_wall = overhead = float("inf")
    for _round in range(5):
        for pair in range(8):
            if pair % 2 == 0:
                base = timed(baseline_setup)
                cand = timed(candidate_setup)
            else:
                cand = timed(candidate_setup)
                base = timed(baseline_setup)
            baseline_wall = min(baseline_wall, base)
            candidate_wall = min(candidate_wall, cand)
            overhead = min(overhead, cand / base - 1.0)
        if overhead <= OBS_OVERHEAD_BUDGET:
            break
    return baseline_wall, candidate_wall, overhead


def test_obs_overhead_p256_within_budget():
    """Enabled span/metric tracing costs <= 3% of a p=256 vector wall.

    Instrumentation lives permanently in the engines, so its *enabled* cost
    must stay in the noise floor too — otherwise campaigns would have to
    choose between telemetry and throughput.  Measured with
    :func:`_paired_overhead`'s drift-cancelling interleaved pairs; the
    tracer is reset between runs so the span list never grows across
    repeats.
    """
    was_enabled = obs.enabled()

    def enabled_mode():
        obs.enable()
        obs.reset()

    try:
        disabled_wall, enabled_wall, overhead = _paired_overhead(
            obs.disable, enabled_mode)
        obs.enable()
        obs.reset()
        _run("vector", _compiled(OBS_OVERHEAD_NPROCS),
             get_machine(MACHINE, OBS_OVERHEAD_NPROCS))
        saw_spans = bool(obs.get_tracer().spans())
    finally:
        obs.reset()
        if was_enabled:
            obs.enable()
        else:
            obs.disable()
    assert saw_spans, "enabled runs recorded no spans"
    print(f"\nobs overhead at p={OBS_OVERHEAD_NPROCS}: "
          f"{disabled_wall * 1e3:.1f} ms disabled, "
          f"{enabled_wall * 1e3:.1f} ms enabled ({overhead:+.2%})")
    _merge_results_json({
        "obs_overhead": {
            "p": OBS_OVERHEAD_NPROCS,
            "disabled_wall_s": round(disabled_wall, 4),
            "enabled_wall_s": round(enabled_wall, 4),
            "overhead_pct": round(overhead * 100.0, 2),
            "budget_pct": OBS_OVERHEAD_BUDGET * 100.0,
        },
    })
    assert overhead <= OBS_OVERHEAD_BUDGET, \
        f"obs-enabled run is {overhead:.2%} slower than disabled " \
        f"(budget {OBS_OVERHEAD_BUDGET:.0%})"


def test_faults_overhead_p256_within_budget():
    """An installed (but never-firing) fault plan costs <= 3% of a p=256
    vector wall.

    ``repro.faults`` instrumentation follows the obs no-op discipline: a
    site is one module-global read when no plan is installed, and the
    execution core has *no* sites at all — so neither clearing nor
    installing a plan may move the engine's wall-clock.  Pinning the
    installed case keeps a future hot-path injection site from landing
    without that discipline.  Measured with :func:`_paired_overhead`'s
    drift-cancelling interleaved pairs, same budget as ``obs_overhead``.
    """
    from repro import faults

    plan = faults.FaultPlan(actions=(
        faults.FaultAction(site="store.append", action="exception",
                           match={"store": "never-matches.jsonl"}),))
    try:
        cleared_wall, installed_wall, overhead = _paired_overhead(
            faults.clear, lambda: faults.install(plan))
    finally:
        faults.clear()
    print(f"\nfaults overhead at p={OBS_OVERHEAD_NPROCS}: "
          f"{cleared_wall * 1e3:.1f} ms cleared, "
          f"{installed_wall * 1e3:.1f} ms with a plan installed "
          f"({overhead:+.2%})")
    _merge_results_json({
        "faults_overhead": {
            "p": OBS_OVERHEAD_NPROCS,
            "cleared_wall_s": round(cleared_wall, 4),
            "installed_wall_s": round(installed_wall, 4),
            "overhead_pct": round(overhead * 100.0, 2),
            "budget_pct": OBS_OVERHEAD_BUDGET * 100.0,
        },
    })
    assert overhead <= OBS_OVERHEAD_BUDGET, \
        f"run with a fault plan installed is {overhead:.2%} slower than " \
        f"cleared (budget {OBS_OVERHEAD_BUDGET:.0%})"
