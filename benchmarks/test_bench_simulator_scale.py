"""E-scale — execution-core scaling: the vector engine vs the loop oracle.

The simulator's ``loop`` engine walks every per-rank quantity in python
loops, which made large partitions (p ≥ 64 — the CM-5-class and
modern-cluster regime) the hot path of every campaign.  The ``vector``
engine computes per-rank state in bulk and drains network phases batched.

This benchmark pins the tentpole claims on the ``modern-cluster`` target:

* both engines produce identical per-rank times (within 1e-9; in practice
  bit-for-bit) at p ∈ {64, 128, 256}, and
* the vector engine is at least 3× faster in wall-clock at p = 256.

It also regenerates the README "Performance" table (run with ``-s`` to see
it)::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_simulator_scale.py -s
"""

import time

import numpy as np
import pytest

from repro.compiler import compile_source
from repro.simulator import SimulatorOptions, simulate
from repro.suite import get_entry
from repro.system import get_machine

MACHINE = "modern-cluster"
APP = "laplace_block_star"
SIZE = 64           # grid edge: keeps the (engine-shared) data plane small
MAXITER = 20.0      # more Jacobi iterations -> more per-rank/network phases


def _compiled(nprocs: int):
    entry = get_entry(APP)
    params = entry.params_for(SIZE)
    params["maxiter"] = MAXITER
    return compile_source(entry.source, nprocs=nprocs, params=params)


def _run(engine: str, compiled, machine):
    return simulate(compiled, machine, options=SimulatorOptions(engine=engine))


def _best_wall(engine: str, compiled, machine, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        _run(engine, compiled, machine)
        best = min(best, time.perf_counter() - started)
    return best


@pytest.mark.parametrize("nprocs", [64, 128, 256],
                         ids=["p64", "p128", "p256"])
def test_engine_parity_at_scale(nprocs):
    """Vector and loop engines agree on every per-rank time within 1e-9."""
    compiled = _compiled(nprocs)
    machine = get_machine(MACHINE, nprocs)
    loop = _run("loop", compiled, machine)
    vector = _run("vector", compiled, machine)

    loop_ranks = np.asarray(loop.per_rank_us)
    vector_ranks = np.asarray(vector.per_rank_us)
    worst = float(np.max(np.abs(loop_ranks - vector_ranks)))
    assert worst <= 1e-9, f"per-rank divergence {worst} at p={nprocs}"
    assert vector.measured_time_us == loop.measured_time_us
    assert vector.array_checksum == loop.array_checksum
    assert vector.engine == "vector" and loop.engine == "loop"


def test_vector_engine_speedup_table():
    """≥3× wall-clock at p=256, and the README performance table."""
    rows = []
    for nprocs in (64, 256):
        compiled = _compiled(nprocs)
        machine = get_machine(MACHINE, nprocs)
        loop_wall = _best_wall("loop", compiled, machine)
        vector_wall = _best_wall("vector", compiled, machine)
        rows.append((nprocs, loop_wall, vector_wall, loop_wall / vector_wall))

    print()
    print(f"simulator wall-clock, {APP} n={SIZE} maxiter={int(MAXITER)} "
          f"on {MACHINE} (best of 3):")
    print("| p   | loop engine | vector engine | speedup |")
    print("|-----|-------------|---------------|---------|")
    for nprocs, loop_wall, vector_wall, speedup in rows:
        print(f"| {nprocs:<3} | {loop_wall * 1e3:8.0f} ms | {vector_wall * 1e3:10.0f} ms "
              f"| {speedup:6.1f}x |")

    by_p = {row[0]: row for row in rows}
    assert by_p[64][3] > 1.0, "vector engine should win already at p=64"
    assert by_p[256][3] >= 3.0, \
        f"vector engine speedup at p=256 is {by_p[256][3]:.2f}x (< 3x)"
