"""E-scale — execution-core scaling: the vector engine vs the loop oracle.

The simulator's ``loop`` engine walks every per-rank quantity in python
loops, which made large partitions (p ≥ 64 — the CM-5-class and
modern-cluster regime) the hot path of every campaign.  The ``vector``
engine keeps per-rank state — including the clocks of whole communication
phases — in arrays and prices link-disjoint network stages with one
vectorised expression each.

This benchmark pins the tentpole claims on the ``modern-cluster`` target:

* both engines produce identical per-rank times (within 1e-9; in practice
  bit-for-bit) at p ∈ {64, 128, 256, 1024}, and
* the vector engine is at least 6× faster in wall-clock at p = 256 (the
  PR-4 batched-drain core measured ~4× there, so this pin certifies the
  array-clock core's ≥2× on top), and
* a p = 1024 contention-free (crossbar fabric) simulation completes inside
  the wall-clock budget.

Each run also emits ``benchmarks/results/BENCH_simulator_scale.json`` —
machine-readable per-p wall-clocks and speedups — so the performance
trajectory is comparable across PRs, and regenerates the README
"Performance" table from the same rows (run with ``-s`` to see it)::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_simulator_scale.py -s
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.compiler import compile_source
from repro.simulator import SimulatorOptions, simulate
from repro.suite import get_entry
from repro.system import get_machine

MACHINE = "modern-cluster"
APP = "laplace_block_star"
SIZE = 64           # grid edge: keeps the (engine-shared) data plane small
MAXITER = 20.0      # more Jacobi iterations -> more per-rank/network phases

#: Wall-clock budget for one p=1024 vector-engine run on the crossbar
#: (contention-free) fabric.  Measured ~0.25 s; the budget leaves CI slack.
P1024_BUDGET_SECONDS = 5.0

RESULTS_JSON = Path(__file__).parent / "results" / "BENCH_simulator_scale.json"


def _compiled(nprocs: int):
    entry = get_entry(APP)
    params = entry.params_for(SIZE)
    params["maxiter"] = MAXITER
    return compile_source(entry.source, nprocs=nprocs, params=params)


def _run(engine: str, compiled, machine):
    return simulate(compiled, machine, options=SimulatorOptions(engine=engine))


def _best_wall(engine: str, compiled, machine, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        _run(engine, compiled, machine)
        best = min(best, time.perf_counter() - started)
    return best


def render_performance_table(rows) -> list[str]:
    """The README "Performance" table lines for ``(p, loop_s, vector_s, speedup)`` rows."""
    lines = [
        "| p    | loop engine | vector engine | speedup |",
        "|------|-------------|---------------|---------|",
    ]
    for nprocs, loop_wall, vector_wall, speedup in rows:
        lines.append(
            f"| {nprocs:<4} | {loop_wall * 1e3:8.0f} ms | "
            f"{vector_wall * 1e3:10.0f} ms | {speedup:6.1f}x |")
    return lines


@pytest.mark.parametrize("nprocs", [64, 128, 256, 1024],
                         ids=["p64", "p128", "p256", "p1024"])
def test_engine_parity_at_scale(nprocs):
    """Vector and loop engines agree on every per-rank time within 1e-9."""
    compiled = _compiled(nprocs)
    machine = get_machine(MACHINE, nprocs)
    loop = _run("loop", compiled, machine)
    vector = _run("vector", compiled, machine)

    loop_ranks = np.asarray(loop.per_rank_us)
    vector_ranks = np.asarray(vector.per_rank_us)
    worst = float(np.max(np.abs(loop_ranks - vector_ranks)))
    assert worst <= 1e-9, f"per-rank divergence {worst} at p={nprocs}"
    assert vector.measured_time_us == loop.measured_time_us
    assert vector.array_checksum == loop.array_checksum
    assert vector.engine == "vector" and loop.engine == "loop"


def test_p1024_contention_free_within_budget():
    """One p=1024 run on the crossbar fabric stays inside the budget.

    The modern-cluster topology advertises ``link_disjoint_paths``, so every
    collective stage takes the array drain's vectorised fast path — this is
    the "p ≥ 1024 unlocked" claim in wall-clock form.
    """
    compiled = _compiled(1024)
    machine = get_machine(MACHINE, 1024)
    assert machine.topology(1024).link_disjoint_paths
    started = time.perf_counter()
    result = _run("vector", compiled, machine)
    elapsed = time.perf_counter() - started
    assert len(result.per_rank_us) == 1024
    assert elapsed <= P1024_BUDGET_SECONDS, \
        f"p=1024 vector run took {elapsed:.2f}s (budget {P1024_BUDGET_SECONDS}s)"


def test_vector_engine_speedup_table():
    """≥6× wall-clock at p=256, the README table, and the JSON trajectory."""
    rows = []
    for nprocs in (64, 256, 1024):
        compiled = _compiled(nprocs)
        machine = get_machine(MACHINE, nprocs)
        loop_wall = _best_wall("loop", compiled, machine)
        vector_wall = _best_wall("vector", compiled, machine)
        rows.append((nprocs, loop_wall, vector_wall, loop_wall / vector_wall))

    print()
    print(f"simulator wall-clock, {APP} n={SIZE} maxiter={int(MAXITER)} "
          f"on {MACHINE} (best of 3):")
    for line in render_performance_table(rows):
        print(line)

    RESULTS_JSON.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_JSON.write_text(json.dumps({
        "schema": 1,
        "benchmark": "simulator_scale",
        "machine": MACHINE,
        "app": APP,
        "size": SIZE,
        "maxiter": MAXITER,
        "rows": [
            {"p": nprocs,
             "loop_wall_s": round(loop_wall, 4),
             "vector_wall_s": round(vector_wall, 4),
             "speedup": round(speedup, 2)}
            for nprocs, loop_wall, vector_wall, speedup in rows
        ],
    }, indent=2) + "\n")

    by_p = {row[0]: row for row in rows}
    assert by_p[64][3] > 1.0, "vector engine should win already at p=64"
    assert by_p[256][3] >= 6.0, \
        f"vector engine speedup at p=256 is {by_p[256][3]:.2f}x (< 6x)"
    assert by_p[1024][3] >= 6.0, \
        f"vector engine speedup at p=1024 is {by_p[1024][3]:.2f}x (< 6x)"
