"""A2 — sensitivity of the prediction to the communication characterisation.

Perturbs the interpreter's machine abstraction (message latency and link
bandwidth scaling) while the simulated machine stays fixed.  The prediction
error should be smallest when the abstraction matches the machine (scale 1.0)
and grow as the characterisation is degraded — the reason §4.4 derives the
communication parameters from benchmarking runs instead of data sheets.
"""

from repro.workbench import run_comm_sensitivity


def test_ablation_comm_sensitivity(benchmark):
    report = benchmark.pedantic(
        run_comm_sensitivity,
        kwargs={"application": "laplace_block_block", "size": 128, "nprocs": 8},
        rounds=1, iterations=1,
    )

    print()
    print(report.to_table())

    errors = report.errors_by_label()
    matched = errors["latency x1, bandwidth x1"]
    print()
    print(f"  matched characterisation error: {matched:.2f}%")

    # the matched characterisation is accurate
    assert matched < 6.0

    # badly mis-characterised latency or bandwidth degrades the prediction
    assert errors["latency x2, bandwidth x1"] > matched
    assert errors["latency x0.5, bandwidth x1"] > matched
    assert errors["latency x1, bandwidth x0.5"] > matched

    # the worst mis-characterisation is clearly worse than the matched one
    assert max(errors.values()) > matched * 1.5
