"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure of the paper's evaluation
(see DESIGN.md's experiment index).  The regenerated rows/series are printed
to stdout — run with ``pytest benchmarks/ --benchmark-only -s`` to see them —
and the headline shape claims are asserted so the harness doubles as an
end-to-end regression check.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
