"""Repository-level pytest configuration: make src/ importable without install.

Also registers the ``slow`` marker: stress tests and benchmarks (8-way
writer contention, 10k-point sharded sweeps) are deselected by default so
tier-1 stays fast; CI opts in with ``REPRO_SLOW=1`` (see scripts/check.sh)
and a developer can run one explicitly with ``-m slow``.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))

SLOW_ENV = "REPRO_SLOW"


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: stress tests / benchmarks, skipped unless REPRO_SLOW=1 "
        "or explicitly selected with -m slow")


def pytest_collection_modifyitems(config, items):
    if os.environ.get(SLOW_ENV, "").strip().lower() in ("1", "true", "on"):
        return
    if config.getoption("-m", default="") and \
            "slow" in config.getoption("-m"):
        return                          # explicit -m slow selection wins
    skip = pytest.mark.skip(
        reason=f"slow test (set {SLOW_ENV}=1 or run with -m slow)")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip)
