"""CI serving smoke: a live server under a mixed hit/miss burst.

Starts a real ``repro.serve`` server (ephemeral port, scratch store),
replays a burst of predict requests in which every scenario appears
several times, and asserts the serving contract against ground truth:

* the response tiers add up — each distinct scenario computes exactly
  once, every repeat is served from the memory tier, and a fresh server
  over the same store answers from the store tier without recomputing,
* the obs cache counters agree with the arithmetic above (hits, misses,
  computes) as scraped from the live ``/metrics`` endpoint,
* the per-batch serve manifests cross-check against the store (fresh
  evaluations == store records == distinct scenarios), and
* shutdown is clean: the context manager joins the server thread and a
  second server can immediately rebind the work.

Everything runs against a scratch store in a temp directory.

Usage:  PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import obs  # noqa: E402
from repro.explore import ResultStore  # noqa: E402
from repro.serve import (  # noqa: E402
    ServeOptions,
    ServerThread,
    serve_manifest_path,
)

#: The burst: 4 distinct scenarios, each requested 4 times (interleaved,
#: so hits and misses mix rather than running in phases).
SCENARIOS = [
    {"app": "laplace_block_star", "size": 16, "nprocs": nprocs,
     "machine": "ipsc860"}
    for nprocs in (2, 4, 8, 16)
]
REPEATS = 4


def post_predict(base: str, payload: dict) -> dict:
    request = urllib.request.Request(
        base + "/predict", data=json.dumps(payload).encode())
    with urllib.request.urlopen(request, timeout=30) as response:
        assert response.status == 200
        return json.loads(response.read())


def scrape_metric(base: str, name: str) -> float:
    with urllib.request.urlopen(base + "/metrics", timeout=30) as response:
        text = response.read().decode()
    for line in text.splitlines():
        if line.startswith(name + " ") or line.startswith(name + "{"):
            return float(line.rsplit(" ", 1)[1])
    return 0.0


def main() -> int:
    obs.disable()
    obs.reset()
    distinct = len(SCENARIOS)
    total = distinct * REPEATS

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as scratch:
        store_path = os.path.join(scratch, "serve_smoke.jsonl")
        options = ServeOptions(port=0, store_path=store_path, cache_size=64)

        with ServerThread(options) as (host, port):
            base = f"http://{host}:{port}"
            tiers: dict[str, int] = {}
            for repeat in range(REPEATS):
                for scenario in SCENARIOS:
                    answer = post_predict(base, scenario)
                    tiers[answer["served_from"]] = \
                        tiers.get(answer["served_from"], 0) + 1
                    assert answer["predicted_time_us"] > 0
            assert tiers == {"computed": distinct,
                             "memory": total - distinct}, tiers

            # the live counters must agree with the tier arithmetic
            computes = scrape_metric(
                base, 'repro_serve_computes_total{kind="predict"}')
            memory_hits = scrape_metric(
                base, 'repro_serve_cache_hits_total{tier="memory"}')
            assert computes == distinct, (computes, distinct)
            assert memory_hits == total - distinct, (memory_hits, total)

        # clean shutdown: the store on disk holds exactly the computed set,
        # and the batch manifests cross-check against it
        store = ResultStore(store_path)
        assert len(store) == distinct, len(store)
        manifest = obs.RunManifest.load(serve_manifest_path(store_path))
        assert manifest.mode == "serve"
        assert manifest.store_records <= distinct
        assert manifest.fresh_evaluations >= 1

        # a fresh server over the same store serves from the store tier
        # without a single new compute
        obs.reset()
        with ServerThread(ServeOptions(port=0, store_path=store_path,
                                       cache_size=64)) as (host, port):
            base = f"http://{host}:{port}"
            for scenario in SCENARIOS:
                assert post_predict(base, scenario)["served_from"] == "store"
            computes = scrape_metric(
                base, 'repro_serve_computes_total{kind="predict"}')
            store_hits = scrape_metric(
                base, 'repro_serve_cache_hits_total{tier="store"}')
            assert computes == 0, computes
            assert store_hits == distinct, store_hits

    obs.disable()
    obs.reset()
    print(f"serve smoke: {total} requests over {distinct} scenarios — "
          f"{distinct} computed, {total - distinct} memory hits, "
          f"{distinct} store hits on restart; manifests and counters "
          f"cross-checked, shutdown clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
