"""Store-migration drift report: sequential-scheme vs counter-scheme noise.

The counter-keyed noise engine replaces the legacy one-stream sequential
draws as the simulator's default.  Both schemes realise the *same* noise
magnitudes (the §5.1 "variance of the measured times") from the same seed,
but as different deterministic realisations — so every measure-mode store
record drifts by a small amount when regenerated.  This script is the record
of that migration:

* runs one measure-mode campaign under each scheme (identical space, seed
  and machines — only ``NoiseOptions.scheme`` differs),
* joins the two result sets on the content-addressed scenario key and
  renders the ``store_diff_table`` of worst drifts,
* asserts every drift stays inside the §5.1 variance band (the noise model's
  own magnitudes bound how far two equally-valid realisations can sit), and
* writes ``benchmarks/results/STORE_DIFF_noise_engine.md``.

Predict-mode stores (e.g. ``benchmarks/results/smoke_campaign.jsonl``) carry
analytic, noise-free estimates and are byte-identical under either scheme —
the migration touches only simulated measurements.

Usage:  PYTHONPATH=src python scripts/noise_drift_report.py [report-path]
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.explore import (  # noqa: E402
    ScenarioSpace,
    run_campaign,
    store_diff,
    store_diff_table,
)
from repro.simulator import NoiseOptions, SimulatorOptions  # noqa: E402

DEFAULT_REPORT = os.path.join(os.path.dirname(__file__), "..",
                              "benchmarks", "results",
                              "STORE_DIFF_noise_engine.md")

#: Small but representative measure-mode space: both Laplace layouts, two
#: problem sizes, two partition sizes, hypercube + crossbar interconnects.
DRIFT_SPACE = ScenarioSpace(
    apps=("laplace_block_star", "laplace_star_block"),
    sizes=(16, 32),
    proc_counts=(4, 8),
    machines=("ipsc860", "modern-cluster"),
)

#: §5.1 variance band: the worst acceptable scheme-to-scheme drift of one
#: simulated measurement.  The noise model's magnitudes (0.4% compute jitter,
#: 1% message jitter plus a µs-scale additive floor and rare interruptions)
#: keep two realisations within a few percent; 5% is the generous bound the
#: paper's "within the variance of the measured times" language supports.
DRIFT_BAND_PCT = 5.0


def main() -> int:
    report_path = sys.argv[1] if len(sys.argv) > 1 \
        else os.path.normpath(DEFAULT_REPORT)

    campaigns = {}
    for scheme in ("sequential", "counter"):
        options = SimulatorOptions(noise=NoiseOptions(scheme=scheme))
        campaigns[scheme] = run_campaign(
            DRIFT_SPACE, name=f"noise-drift-{scheme}", mode="measure",
            simulator_options=options)

    old = campaigns["sequential"].results
    new = campaigns["counter"].results
    expected = len(DRIFT_SPACE.expand())
    assert len(old) == expected and len(new) == expected, \
        f"campaigns produced {len(old)}/{len(new)} of {expected} points"

    # tolerance 0: report every moved value, however small — this table is
    # the migration record, not a regression gate
    diff = store_diff(old, new, tolerance_pct=0.0)
    assert not diff.added and not diff.removed, \
        "scheme change must not add or remove scenario keys"

    worst = max((pct for _, _, pct in diff.drifted), default=0.0)
    assert worst <= DRIFT_BAND_PCT, \
        f"worst scheme drift {worst:.3f}% exceeds the §5.1 band " \
        f"({DRIFT_BAND_PCT}%)"

    table = store_diff_table(
        diff=diff, max_rows=len(diff.drifted) or 1,
        title="Store diff: counter-keyed noise engine vs sequential scheme")

    lines = [
        "# Noise-engine store migration",
        "",
        "The counter-based keyed noise engine (PR 6) replaces the legacy",
        "sequential one-stream draws as the simulator's default scheme.",
        "Both schemes realise the same §5.1 noise magnitudes from the same",
        "seed, as different deterministic realisations — every simulated",
        "measurement therefore drifts slightly when a store is regenerated.",
        "",
        f"* space: {expected} measure-mode scenarios "
        "(2 layouts x 2 sizes x {4, 8} ranks x {ipsc860, modern-cluster})",
        f"* worst drift: {worst:.3f}% "
        f"(band: {DRIFT_BAND_PCT}% — the §5.1 measurement-variance bound)",
        "* predict-mode stores (analytic, noise-free) are unchanged:",
        "  `benchmarks/results/smoke_campaign.jsonl` stays byte-identical.",
        "* the legacy realisation stays reachable via",
        "  `NoiseOptions(scheme=\"sequential\")` for one release.",
        "",
        "```",
        table,
        "```",
        "",
    ]
    report = "\n".join(lines)
    with open(report_path, "w") as fh:
        fh.write(report)

    print(report)
    print(f"report written to {report_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
