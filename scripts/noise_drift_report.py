"""Retirement note for the sequential noise scheme (+ archive verification).

PR 6 replaced the legacy one-stream sequential noise draws with the
counter-keyed engine and kept ``NoiseOptions(scheme="sequential")`` for one
release so stores could be regenerated/compared; the measured drift between
the two realisations was recorded in
``benchmarks/results/STORE_DIFF_noise_engine.md``.  That window is over: the
sequential path was deleted in repro 1.1.0 and requesting it now fails
eagerly with a removal notice.

This script regenerates the store-diff note in its final, archival form:

* asserts ``NoiseOptions(scheme="sequential")`` raises the removal notice
  and that ``"counter"`` is the default (and only) scheme,
* re-runs the original 16-scenario measure-mode drift space under the
  counter scheme and verifies the simulated times still match the archived
  migration table's "current" column — i.e. the archived drift numbers
  remain anchored to what the engine produces today, and
* rewrites ``benchmarks/results/STORE_DIFF_noise_engine.md`` as a
  retirement note preserving the migration's headline numbers (worst drift
  0.251% over 16 scenarios, well inside the §5.1 band); the full
  sequential-vs-counter table lives in git history of that file.

Usage:  PYTHONPATH=src python scripts/noise_drift_report.py [report-path]
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.explore import ScenarioSpace, run_campaign  # noqa: E402
from repro.frontend.errors import SimulationError  # noqa: E402
from repro.simulator import (  # noqa: E402
    NOISE_SCHEMES,
    NoiseOptions,
    SimulatorOptions,
)

DEFAULT_REPORT = os.path.join(os.path.dirname(__file__), "..",
                              "benchmarks", "results",
                              "STORE_DIFF_noise_engine.md")

#: The migration report's measure-mode space, unchanged since PR 6: both
#: Laplace layouts, two problem sizes, two partition sizes, hypercube +
#: crossbar interconnects.
DRIFT_SPACE = ScenarioSpace(
    apps=("laplace_block_star", "laplace_star_block"),
    sizes=(16, 32),
    proc_counts=(4, 8),
    machines=("ipsc860", "modern-cluster"),
)

#: The archived migration table's counter-scheme ("current") column:
#: (app, size, nprocs, machine) -> simulated time in µs.  These anchor the
#: retirement note to the engine's present-day output — if a change moves
#: them, the archived drift percentages no longer describe this engine and
#: the note must be re-derived, not silently kept.
ARCHIVED_COUNTER_TIMES_US = {
    ("laplace_block_star", 16, 4, "ipsc860"): 9923.0,
    ("laplace_block_star", 16, 4, "modern-cluster"): 2773.0,
    ("laplace_block_star", 16, 8, "ipsc860"): 9391.0,
    ("laplace_block_star", 16, 8, "modern-cluster"): 2697.0,
    ("laplace_block_star", 32, 4, "ipsc860"): 20809.0,
    ("laplace_block_star", 32, 4, "modern-cluster"): 2828.0,
    ("laplace_block_star", 32, 8, "ipsc860"): 16831.0,
    ("laplace_block_star", 32, 8, "modern-cluster"): 3312.0,
    ("laplace_star_block", 16, 4, "ipsc860"): 9519.0,
    ("laplace_star_block", 16, 4, "modern-cluster"): 2381.0,
    ("laplace_star_block", 16, 8, "ipsc860"): 9080.0,
    ("laplace_star_block", 16, 8, "modern-cluster"): 2403.0,
    ("laplace_star_block", 32, 4, "ipsc860"): 20728.0,
    ("laplace_star_block", 32, 4, "modern-cluster"): 2528.0,
    ("laplace_star_block", 32, 8, "ipsc860"): 16008.0,   # the unchanged row
    ("laplace_star_block", 32, 8, "modern-cluster"): 2479.0,
}

NOTE_LINES = [
    "# Noise-engine store migration (closed: sequential scheme retired)",
    "",
    "The counter-based keyed noise engine (PR 6) replaced the legacy",
    "sequential one-stream draws as the simulator's noise scheme.  Both",
    "realised the same §5.1 noise magnitudes from the same seed, as",
    "different deterministic realisations, so every simulated measurement",
    "drifted slightly when a store was regenerated.  The migration window",
    "(`NoiseOptions(scheme=\"sequential\")` kept for one release) closed in",
    "repro 1.1.0: the sequential path is deleted and requesting it raises",
    "an eager `SimulationError` naming this note.",
    "",
    "Migration record (measured before retirement, full per-scenario table",
    "in this file's git history):",
    "",
    "* space: 16 measure-mode scenarios (2 layouts x 2 sizes x {4, 8}",
    "  ranks x {ipsc860, modern-cluster})",
    "* worst drift: 0.251% — `laplace_star_block n=16 p=4 modern-cluster`",
    "  (band: 5.0%, the §5.1 measurement-variance bound); 15 of 16",
    "  scenarios drifted, none added or removed",
    "* predict-mode stores (analytic, noise-free) were unchanged:",
    "  `benchmarks/results/smoke_campaign.jsonl` stayed byte-identical.",
    "",
    "`scripts/noise_drift_report.py` regenerates this note and re-verifies",
    "that the counter engine still reproduces the archived \"current\"",
    "column exactly, so the recorded drift stays anchored to the living",
    "engine.",
    "",
]


def main() -> int:
    report_path = sys.argv[1] if len(sys.argv) > 1 \
        else os.path.normpath(DEFAULT_REPORT)

    # 1. the retirement contract: sequential is gone, counter is the scheme
    assert NOISE_SCHEMES == ("counter",), NOISE_SCHEMES
    assert NoiseOptions().scheme == "counter"
    try:
        NoiseOptions(scheme="sequential")
    except SimulationError as err:
        message = str(err)
        assert "removed in repro 1.1.0" in message, message
        assert "STORE_DIFF_noise_engine" in message, message
    else:
        raise AssertionError(
            "NoiseOptions(scheme='sequential') no longer raises")

    # 2. the archive anchor: today's counter engine still produces the
    #    migration table's "current" column
    run = run_campaign(
        DRIFT_SPACE, name="noise-retirement-verify", mode="measure",
        simulator_options=SimulatorOptions(noise=NoiseOptions()))
    expected = len(DRIFT_SPACE.expand())
    assert len(run.results) == expected, \
        f"campaign produced {len(run.results)} of {expected} points"
    mismatches = []
    for result in run.results:
        point = result.point
        key = (point.app, point.size, point.nprocs, point.machine)
        archived = ARCHIVED_COUNTER_TIMES_US[key]
        current = round(result.measured_us)
        if current != archived:
            mismatches.append(f"  {key}: archived {archived}, now {current}")
    assert not mismatches, \
        "counter engine no longer matches the archived migration table " \
        "(re-derive the note):\n" + "\n".join(mismatches)

    report = "\n".join(NOTE_LINES)
    with open(report_path, "w") as fh:
        fh.write(report)

    print(report)
    print(f"archived counter column verified over {expected} scenarios; "
          f"note written to {report_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
