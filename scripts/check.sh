#!/usr/bin/env bash
# CI / local verification: unit + integration tests plus a fast benchmark and
# example smoke.  (The full tier-1 command, `PYTHONPATH=src python -m pytest
# -x -q` from the repo root, additionally collects every benchmark in
# benchmarks/; here the benchmark step is deliberately restricted to the fast
# figure regenerations so CI stays quick.)
#
# Usage:  bash scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== unit + integration tests"
python -m pytest tests -x -q

echo "== benchmark smoke: regenerate Figure 2 (forall) and Figure 3 (distributions)"
python -m pytest benchmarks -x -q -k "fig2 or fig3"

echo "== simulator-scale smoke: loop/vector engine parity at p=64"
python -m pytest benchmarks/test_bench_simulator_scale.py -x -q -k "parity and p64"

echo "== simulator-scale smoke: p=1024 contention-free run inside the wall-clock budget"
python -m pytest benchmarks/test_bench_simulator_scale.py -x -q -k "p1024_contention_free"

echo "== simulator-scale smoke: p=4096 vector run inside the wall-clock budget"
python -m pytest benchmarks/test_bench_simulator_scale.py -x -q -k "p4096_vector_smoke"

echo "== noise-engine retirement note: sequential scheme removed, archive verified"
python scripts/noise_drift_report.py

echo "== docs check: markdown links + public-API doctests"
python scripts/docs_check.py

echo "== example smoke: cross-machine sweep"
python examples/machine_comparison.py > /dev/null

echo "== campaign smoke: design-space sweep + persistent store"
python scripts/campaign_smoke.py

echo "== sharding smoke: interrupt a sharded campaign, resume, verify the merge"
python scripts/sharding_smoke.py

echo "== advisor smoke: bounded advise() run against the persistent store"
python scripts/advisor_smoke.py

echo "== obs smoke: spans, metrics and run manifest cross-checked end to end"
python scripts/obs_smoke.py

echo "== serve smoke: live HTTP server under a mixed hit/miss burst"
python scripts/serve_smoke.py

echo "== chaos smoke: crash + hang + torn write + transient across a 4-shard campaign and a live server"
python scripts/chaos_smoke.py

echo "== serve benchmark: cached latency percentiles + the 10k/s floor"
python -m pytest benchmarks/test_bench_serve.py -x -q

echo "== slow tier: stress tests (8-way writer contention, live-server mix)"
REPRO_SLOW=1 python -m pytest tests -x -q -m slow

echo "check.sh: all green"
