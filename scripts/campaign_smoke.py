"""CI campaign smoke: a small design-space sweep with a persistent store.

Runs one predict-mode campaign (2 Laplace distributions x 3 sizes x
3 system sizes x 2 machines), asserts the subsystem end to end — non-empty
store, rendering best-config table, 100% store hits on an immediate re-run —
and persists the store under ``benchmarks/results/`` so the *next* revision
can compare against this one.  When a previous store is present, every
freshly evaluated point is diffed against it and drift is reported (and
tolerated: a deliberate model change is supposed to move the numbers; the
diff is the record that it did).

Usage:  PYTHONPATH=src python scripts/campaign_smoke.py [store-path]
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.explore import (  # noqa: E402
    ResultStore,
    ScenarioSpace,
    best_config_table,
    run_campaign,
    store_diff,
    store_diff_table,
)

DEFAULT_STORE = os.path.join(os.path.dirname(__file__), "..",
                             "benchmarks", "results", "smoke_campaign.jsonl")

SMOKE_SPACE = ScenarioSpace(
    apps=("laplace_block_star", "laplace_star_block"),
    sizes=(16, 32, 64),
    proc_counts=(2, 4, 8),
    machines=("ipsc860", "torus-cluster"),
)

DRIFT_TOLERANCE_PCT = 0.01      # predictions are analytic: exact in practice


def main() -> int:
    store_path = sys.argv[1] if len(sys.argv) > 1 else os.path.normpath(DEFAULT_STORE)
    had_previous = os.path.exists(store_path)
    previous = list(ResultStore(store_path)) if had_previous else []

    # evaluate fresh (no store) so a previous run can be compared against
    fresh = run_campaign(SMOKE_SPACE, name="ci-smoke", mode="predict")
    expected = len(SMOKE_SPACE.expand())
    assert len(fresh.results) == expected, \
        f"smoke campaign produced {len(fresh.results)} of {expected} points"

    # cross-store regression diff, joined on the content-addressed key; the
    # CI store also accumulates advisor-smoke scenarios, so restrict the old
    # side to this campaign's own keys (otherwise they read as "removed")
    fresh_keys = {r.key for r in fresh.results}
    previous = [r for r in previous if r.key in fresh_keys]
    diff = store_diff(previous, fresh.results, tolerance_pct=DRIFT_TOLERANCE_PCT)

    # persist; only drifted records are superseded so an unchanged model
    # leaves the committed store byte-identical
    drifted_keys = {new.key for _, new, _ in diff.drifted}
    store = ResultStore(store_path)
    for result in fresh.results:
        store.add(result, replace=result.key in drifted_keys)
    assert len(store) > 0, "smoke store is empty"

    table = best_config_table(fresh.results,
                              title="CI smoke: best configuration per scenario")
    assert table.strip(), "best-config table did not render"
    print(table)
    print()

    if had_previous:
        print(store_diff_table(diff=diff,
                               title="prediction drift vs previous run"))
    else:
        print(f"no previous store at {store_path}; baseline written")
    print()

    # a second smoke store (e.g. a scratch path) diffs cleanly store-vs-store
    # through the same report; here we only assert the join is well-formed
    assert diff.compared + len(diff.added) == len(fresh.results)

    # resume check: a re-run must be served entirely from the store
    rerun = run_campaign(SMOKE_SPACE, name="ci-smoke-rerun", mode="predict",
                         store=ResultStore(store_path))
    assert rerun.evaluated == 0 and rerun.store_hits == len(fresh.results), \
        f"re-run evaluated {rerun.evaluated} points instead of hitting the store"
    print(f"store: {len(store)} records at {store_path}; "
          f"re-run hit the store for all {rerun.store_hits} points")
    return 0


if __name__ == "__main__":
    sys.exit(main())
