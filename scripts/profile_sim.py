#!/usr/bin/env python
"""Profile the vector engine's hot path on a p=256 scenario.

Runs one ``modern-cluster`` simulation of the scale benchmark's scenario
under ``cProfile`` and prints the top cumulative hot spots — the first stop
when a perf PR wants to know where the simulator's wall-clock actually goes
(historically: the network drain, then per-rank noise draws).

``--phase-breakdown`` adds a one-table summary of where the wall-clock goes,
bucketed by simulator subsystem (noise draws, node cost model, network +
collectives, everything else) — the view that motivated the counter-keyed
noise engine (noise was ~40% of the vector wall at p=1024 under the old
sequential draws).

Usage::

    PYTHONPATH=src python scripts/profile_sim.py [--nprocs 256] [--top 25]
            [--engine vector] [--sort cumulative] [--phase-breakdown]
"""

from __future__ import annotations

import argparse
import cProfile
import pstats

from repro.compiler import compile_source
from repro.simulator import SimulatorOptions, simulate
from repro.suite import get_entry
from repro.system import get_machine

APP = "laplace_block_star"
SIZE = 64
MAXITER = 20.0

#: ``--phase-breakdown`` buckets, matched against each profiled frame's
#: filename (first match wins, top to bottom).
_PHASE_BUCKETS = (
    ("noise", ("simulator/noise.py",)),
    ("node cost", ("simulator/node.py",)),
    ("network", ("simulator/network.py", "simulator/collectives.py",
                 "simulator/events.py", "simulator/hypercube.py")),
)


def phase_breakdown(stats: pstats.Stats) -> list[tuple[str, float]]:
    """Aggregate per-frame ``tottime`` into simulator-subsystem buckets.

    ``tottime`` (self time, excluding callees) partitions the wall exactly,
    so the bucket shares sum to the profiled total.
    """
    totals = {name: 0.0 for name, _ in _PHASE_BUCKETS}
    totals["other"] = 0.0
    for (filename, _line, _func), (_cc, _nc, tottime, _ct, _callers) \
            in stats.stats.items():
        path = filename.replace("\\", "/")
        for name, needles in _PHASE_BUCKETS:
            if any(needle in path for needle in needles):
                totals[name] += tottime
                break
        else:
            totals["other"] += tottime
    return sorted(totals.items(), key=lambda kv: -kv[1])


def print_phase_breakdown(stats: pstats.Stats) -> None:
    rows = phase_breakdown(stats)
    wall = sum(t for _, t in rows) or 1.0
    print("\nphase breakdown (self time):")
    for name, t in rows:
        print(f"  {name:<10} {t * 1e3:8.1f} ms  {100.0 * t / wall:5.1f}%")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nprocs", type=int, default=256)
    parser.add_argument("--machine", default="modern-cluster")
    parser.add_argument("--engine", default="vector", choices=("vector", "loop"))
    parser.add_argument("--top", type=int, default=25,
                        help="number of hot spots to print")
    parser.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime"),
                        help="pstats sort key")
    parser.add_argument("--phase-breakdown", action="store_true",
                        help="also print noise / node-cost / network shares "
                             "of the wall-clock")
    args = parser.parse_args()

    entry = get_entry(APP)
    params = entry.params_for(SIZE)
    params["maxiter"] = MAXITER
    compiled = compile_source(entry.source, nprocs=args.nprocs, params=params)
    machine = get_machine(args.machine, args.nprocs)
    options = SimulatorOptions(engine=args.engine)

    simulate(compiled, machine, options=options)   # warm caches / imports

    profiler = cProfile.Profile()
    profiler.enable()
    result = simulate(compiled, machine, options=options)
    profiler.disable()

    print(f"{APP} n={SIZE} maxiter={int(MAXITER)} on {args.machine} "
          f"p={args.nprocs}, engine={args.engine}: "
          f"{result.wall_clock_seconds * 1e3:.0f} ms wall, "
          f"{result.measured_time_us / 1e3:.1f} ms simulated")
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.phase_breakdown:
        print_phase_breakdown(stats)


if __name__ == "__main__":
    main()
