#!/usr/bin/env python
"""Profile the vector engine's hot path on a p=256 scenario.

Runs one ``modern-cluster`` simulation of the scale benchmark's scenario
under ``cProfile`` and prints the top cumulative hot spots — the first stop
when a perf PR wants to know where the simulator's wall-clock actually goes
(historically: the network drain, then per-rank noise draws).

``--phase-breakdown`` adds a one-table summary of where the wall-clock goes,
bucketed by simulator subsystem (node cost model, noise draws, network +
collectives, everything else).  The buckets come from the engines' own
``repro.obs`` spans — recorded in a separate, *unprofiled* run so cProfile's
per-call overhead cannot skew the shares — and by construction sum to the
``simulate`` span's total, an invariant the old pstats-filename bucketing
could silently break.  This is the view that motivated the counter-keyed
noise engine (noise was ~40% of the vector wall at p=1024 under the
since-removed sequential draws); cProfile's top-N remains the per-function
drill-down.

Usage::

    PYTHONPATH=src python scripts/profile_sim.py [--nprocs 256] [--top 25]
            [--engine vector] [--sort cumulative] [--phase-breakdown]
"""

from __future__ import annotations

import argparse
import cProfile
import pstats

from repro import obs
from repro.compiler import compile_source
from repro.simulator import SimulatorOptions, simulate
from repro.suite import get_entry
from repro.system import get_machine

APP = "laplace_block_star"
SIZE = 64
MAXITER = 20.0

#: Engine span names bucketed by ``--phase-breakdown``, in print order.
PHASE_NAMES = ("node_cost", "noise", "network")


def phase_breakdown(compiled, machine, options) -> dict[str, float]:
    """Subsystem shares of one unprofiled, obs-instrumented simulation.

    Returns ``(shares, totals)``: the ``{phase: fraction}`` dict from
    :func:`repro.obs.phase_shares` (which asserts the buckets plus ``other``
    sum to the ``simulate`` span's total) and the per-span-name µs totals
    backing it.
    """
    was_enabled = obs.enabled()
    obs.enable()
    tracer = obs.get_tracer()
    mark = tracer.mark()
    try:
        simulate(compiled, machine, options=options)
        spans = tracer.spans_since(mark)
    finally:
        if not was_enabled:
            obs.disable()
    shares = obs.phase_shares(spans, total_name="simulate",
                              phase_names=PHASE_NAMES)
    totals = tracer.aggregate(spans)
    return shares, totals


def print_phase_breakdown(compiled, machine, options) -> None:
    shares, totals = phase_breakdown(compiled, machine, options)
    if not shares:
        print("\nphase breakdown: no simulate span recorded")
        return
    wall_us = totals.get("simulate", 0.0)
    rows = [(name, shares[name], totals.get(name, 0.0))
            for name in PHASE_NAMES]
    rows.append(("other", shares["other"], shares["other"] * wall_us))
    rows.sort(key=lambda row: -row[1])
    assert abs(sum(t for _, _, t in rows) - wall_us) <= 1e-3 * wall_us + 1.0, \
        "bucket times do not reconcile with the simulate span"
    print("\nphase breakdown (engine spans, separate unprofiled run):")
    for name, share, total_us in rows:
        print(f"  {name:<10} {total_us / 1e3:8.1f} ms  {100.0 * share:5.1f}%")
    print(f"  {'total':<10} {wall_us / 1e3:8.1f} ms  100.0%")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nprocs", type=int, default=256)
    parser.add_argument("--machine", default="modern-cluster")
    parser.add_argument("--engine", default="vector", choices=("vector", "loop"))
    parser.add_argument("--top", type=int, default=25,
                        help="number of hot spots to print")
    parser.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime"),
                        help="pstats sort key")
    parser.add_argument("--phase-breakdown", action="store_true",
                        help="also print node-cost / noise / network shares "
                             "of the wall-clock, from repro.obs spans")
    args = parser.parse_args()

    entry = get_entry(APP)
    params = entry.params_for(SIZE)
    params["maxiter"] = MAXITER
    compiled = compile_source(entry.source, nprocs=args.nprocs, params=params)
    machine = get_machine(args.machine, args.nprocs)
    options = SimulatorOptions(engine=args.engine)

    simulate(compiled, machine, options=options)   # warm caches / imports

    profiler = cProfile.Profile()
    profiler.enable()
    result = simulate(compiled, machine, options=options)
    profiler.disable()

    print(f"{APP} n={SIZE} maxiter={int(MAXITER)} on {args.machine} "
          f"p={args.nprocs}, engine={args.engine}: "
          f"{result.wall_clock_seconds * 1e3:.0f} ms wall, "
          f"{result.measured_time_us / 1e3:.1f} ms simulated")
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.phase_breakdown:
        print_phase_breakdown(compiled, machine, options)


if __name__ == "__main__":
    main()
