#!/usr/bin/env python
"""Profile the vector engine's hot path on a p=256 scenario.

Runs one ``modern-cluster`` simulation of the scale benchmark's scenario
under ``cProfile`` and prints the top cumulative hot spots — the first stop
when a perf PR wants to know where the simulator's wall-clock actually goes
(historically: the network drain, then per-rank noise draws).

Usage::

    PYTHONPATH=src python scripts/profile_sim.py [--nprocs 256] [--top 25]
            [--engine vector] [--sort cumulative]
"""

from __future__ import annotations

import argparse
import cProfile
import pstats

from repro.compiler import compile_source
from repro.simulator import SimulatorOptions, simulate
from repro.suite import get_entry
from repro.system import get_machine

APP = "laplace_block_star"
SIZE = 64
MAXITER = 20.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nprocs", type=int, default=256)
    parser.add_argument("--machine", default="modern-cluster")
    parser.add_argument("--engine", default="vector", choices=("vector", "loop"))
    parser.add_argument("--top", type=int, default=25,
                        help="number of hot spots to print")
    parser.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime"),
                        help="pstats sort key")
    args = parser.parse_args()

    entry = get_entry(APP)
    params = entry.params_for(SIZE)
    params["maxiter"] = MAXITER
    compiled = compile_source(entry.source, nprocs=args.nprocs, params=params)
    machine = get_machine(args.machine, args.nprocs)
    options = SimulatorOptions(engine=args.engine)

    simulate(compiled, machine, options=options)   # warm caches / imports

    profiler = cProfile.Profile()
    profiler.enable()
    result = simulate(compiled, machine, options=options)
    profiler.disable()

    print(f"{APP} n={SIZE} maxiter={int(MAXITER)} on {args.machine} "
          f"p={args.nprocs}, engine={args.engine}: "
          f"{result.wall_clock_seconds * 1e3:.0f} ms wall, "
          f"{result.measured_time_us / 1e3:.1f} ms simulated")
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.top)


if __name__ == "__main__":
    main()
