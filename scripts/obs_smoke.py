"""CI observability smoke: spans, metrics and a manifest, end to end.

Runs one small measure+predict campaign with ``repro.obs`` enabled and a
scratch :class:`ResultStore`, then asserts the telemetry pipeline against
ground truth:

* the auto-written :class:`RunManifest` agrees with the store and the
  campaign (points evaluated, fresh evaluations, store hits, record count),
* a re-run of the same space is served entirely from the store and its
  manifest says so (all hits, zero fresh evaluations),
* the recorded spans export to structurally valid Chrome-trace JSON (load
  ``chrome://tracing`` / Perfetto) and the metric registry to Prometheus
  text exposition,
* engine phase shares (node cost / noise / network / other) cover the
  ``simulate`` spans exactly, and
* the committed schema example, ``benchmarks/results/RUN_MANIFEST_example.json``,
  still loads under the current schema version.

Everything runs against a scratch store in a temp directory — the committed
``smoke_campaign.jsonl`` store is not touched (obs stays off in
``campaign_smoke.py``, which keeps that store byte-identical).

Usage:  PYTHONPATH=src python scripts/obs_smoke.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import obs  # noqa: E402
from repro.explore import ResultStore, ScenarioSpace, run_campaign  # noqa: E402

EXAMPLE_MANIFEST = os.path.join(os.path.dirname(__file__), "..",
                                "benchmarks", "results",
                                "RUN_MANIFEST_example.json")

SMOKE_SPACE = ScenarioSpace(
    apps=("laplace_block_star",),
    sizes=(16,),
    proc_counts=(2, 4),
    machines=("ipsc860",),
)


def check_chrome_trace(spans) -> dict:
    """Export *spans* and validate the Chrome-trace envelope and events."""
    trace = obs.chrome_trace(spans)
    # must survive a JSON round-trip (the file chrome://tracing loads)
    trace = json.loads(json.dumps(trace))
    events = trace["traceEvents"]
    assert trace["displayTimeUnit"] == "ms"
    complete = [e for e in events if e.get("ph") == "X"]
    assert len(complete) == len(spans), \
        f"{len(complete)} complete events for {len(spans)} spans"
    for event in complete:
        assert isinstance(event["name"], str) and event["name"]
        assert isinstance(event["ts"], (int, float))
        assert isinstance(event["dur"], (int, float)) and event["dur"] >= 0
        assert "pid" in event and "tid" in event
    names = {e["name"] for e in complete}
    for expected in ("point", "simulate", "price"):
        assert expected in names, f"no {expected!r} span in the trace"
    return trace


def check_prometheus_text(registry) -> str:
    text = obs.prometheus_text(registry)
    assert "# TYPE repro_campaign_points_evaluated_total counter" in text
    assert "# TYPE repro_point_latency_us histogram" in text
    assert 'le="+Inf"' in text
    for line in text.splitlines():
        assert line.startswith("#") or " " in line, f"malformed line: {line!r}"
    return text


def check_manifest_against_store(manifest, store_path, *, expected_points,
                                 expected_fresh, expected_hits) -> None:
    """The acceptance cross-check: manifest numbers vs the store itself."""
    store = ResultStore(store_path)
    assert manifest.schema == obs.MANIFEST_SCHEMA_VERSION
    assert manifest.points_evaluated == expected_points
    assert manifest.fresh_evaluations == expected_fresh
    assert manifest.store_hits == expected_hits
    assert manifest.store_records == len(store)
    assert manifest.store_path == store.path
    assert manifest.wall_time_s > 0.0
    # reload from disk: the written file carries the same numbers
    on_disk = obs.RunManifest.load(obs.manifest_path_for(store_path))
    assert on_disk.points_evaluated == manifest.points_evaluated
    assert on_disk.fresh_evaluations == manifest.fresh_evaluations
    assert on_disk.store_hits == manifest.store_hits
    assert on_disk.store_records == manifest.store_records


def main() -> int:
    obs.enable()
    obs.reset()

    with tempfile.TemporaryDirectory(prefix="repro-obs-smoke-") as scratch:
        store_path = os.path.join(scratch, "obs_smoke.jsonl")
        expected = len(SMOKE_SPACE.expand())

        run = run_campaign(SMOKE_SPACE, name="obs-smoke", mode="both",
                           store=ResultStore(store_path))
        assert len(run.results) == expected
        assert run.manifest is not None, "campaign did not attach a manifest"
        check_manifest_against_store(
            run.manifest, store_path, expected_points=expected,
            expected_fresh=expected, expected_hits=0)

        spans = obs.get_tracer().spans()
        trace = check_chrome_trace(spans)
        shares = obs.phase_shares(spans)
        assert shares and abs(sum(shares.values()) - 1.0) <= 1e-6
        text = check_prometheus_text(obs.get_registry())

        # write the artifacts where a CI run could collect them
        trace_path = os.path.join(scratch, "obs_smoke_trace.json")
        obs.write_chrome_trace(trace_path, spans)
        assert json.load(open(trace_path)) == trace
        prom_path = os.path.join(scratch, "obs_smoke_metrics.prom")
        with open(prom_path, "w") as fh:
            fh.write(text)

        # a re-run is all store hits, and its manifest records that
        rerun = run_campaign(SMOKE_SPACE, name="obs-smoke-rerun", mode="both",
                             store=ResultStore(store_path))
        assert rerun.evaluated == 0 and rerun.store_hits == expected
        check_manifest_against_store(
            rerun.manifest, store_path, expected_points=expected,
            expected_fresh=0, expected_hits=expected)

        print(f"obs smoke: {expected} points, {len(spans)} spans, "
              f"manifest + re-run manifest cross-checked against the store")
        print("phase shares: " + ", ".join(
            f"{name} {share:.1%}" for name, share in sorted(shares.items())))

    # committed schema example still loads under the current schema
    example = obs.RunManifest.load(os.path.normpath(EXAMPLE_MANIFEST))
    assert example.schema <= obs.MANIFEST_SCHEMA_VERSION
    assert example.points_evaluated >= 1
    print(f"schema example OK: {os.path.basename(EXAMPLE_MANIFEST)} "
          f"(schema {example.schema})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
