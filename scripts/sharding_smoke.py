"""CI sharding smoke: interrupt a sharded campaign, resume, verify the merge.

Exercises the fault-tolerance contract of ``repro.explore.sharding`` end to
end in well under 30 seconds:

1. run a 3-shard predict campaign over a small Laplace space with a planned
   ``repro.faults`` torn write against one worker's segment (the worker
   commits part of a chunk, writes a torn JSON fragment, then SIGKILLs
   itself mid-append),
2. assert the run surfaces as :class:`CampaignInterrupted` with an
   ``interrupted`` checkpoint on disk,
3. resume from the checkpoint and assert only the torn chunk was recomputed
   (everything committed before the kill is served from the segment),
4. diff the merged store against an uninterrupted single-process
   :func:`run_campaign` sweep — zero drift, byte-identical records,
5. re-run the merged campaign and assert it is served entirely from the
   canonical store (the ``merged`` fast path).

Usage:  PYTHONPATH=src python scripts/sharding_smoke.py
"""

from __future__ import annotations

import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import faults  # noqa: E402
from repro.explore import (  # noqa: E402
    CampaignInterrupted,
    ResultStore,
    ScenarioSpace,
    partition_points,
    run_campaign,
    run_sharded_campaign,
    segment_path,
    store_diff,
)
from repro.explore.checkpoint import CampaignCheckpoint  # noqa: E402

SMOKE_SPACE = ScenarioSpace(
    apps=("laplace_block_star", "laplace_block_block"),
    sizes=(16, 32, 64),
    proc_counts=(2, 4),
    machines=("ipsc860", "paragon"),
)

SHARDS = 3
CHUNK = 4


#: die during chunk 1, after one of its records was committed
KILL_CHUNK = 1
KEEP_RECORDS = 1


def main() -> int:
    started = time.perf_counter()
    points = SMOKE_SPACE.expand()
    parts = partition_points(points, SHARDS)
    # kill the fullest shard after it commits its first chunk plus one record
    victim = max(range(SHARDS), key=lambda k: len(parts[k]))

    with tempfile.TemporaryDirectory(prefix="repro-shard-smoke-") as tmp:
        store_path = os.path.join(tmp, "sharded.jsonl")
        # a planned torn write at the victim segment's (CHUNK * KILL_CHUNK
        # + KEEP_RECORDS)-th append: the worker writes a torn fragment and
        # SIGKILLs itself mid-append.  max_restarts=0 keeps the watchdog
        # from absorbing the death — this smoke proves interrupt + resume.
        faults.install(faults.FaultPlan(actions=(
            faults.FaultAction(
                site="store.append", action="torn_write",
                index=CHUNK * KILL_CHUNK + KEEP_RECORDS,
                match={"store": os.path.basename(
                    segment_path(store_path, victim))}),)))

        try:
            run_sharded_campaign(SMOKE_SPACE, shards=SHARDS,
                                 name="ci-shard-smoke", store=store_path,
                                 chunk_size=CHUNK, max_restarts=0)
        except CampaignInterrupted as exc:
            interrupted = exc
        else:
            raise AssertionError("fault injection did not interrupt the run")
        finally:
            faults.clear()
        ckpt = CampaignCheckpoint.load(interrupted.checkpoint_path)
        assert ckpt.status == "interrupted", ckpt.status
        print(f"interrupted as planned: {interrupted.failed} "
              f"(checkpoint status {ckpt.status!r})")

        resumed = run_sharded_campaign(SMOKE_SPACE, shards=SHARDS,
                                       name="ci-shard-smoke", store=store_path,
                                       chunk_size=CHUNK)
        assert resumed.resumed, "resume did not pick up the checkpoint"
        committed = CHUNK * KILL_CHUNK + KEEP_RECORDS
        victim_outcome = resumed.per_shard[victim]
        assert victim_outcome.store_hits == committed, \
            f"expected {committed} pre-kill records to survive, " \
            f"saw {victim_outcome.store_hits} store hits"
        assert victim_outcome.fresh_evaluations == \
            len(parts[victim]) - committed, \
            "resume recomputed more than the torn chunk"
        assert resumed.merge_diff is not None
        assert resumed.merge_diff.drifted == []
        print(f"resumed: shard {victim} kept {victim_outcome.store_hits} "
              f"records, recomputed {victim_outcome.fresh_evaluations}; "
              f"other shards {sum(o.fresh_evaluations for k, o in enumerate(resumed.per_shard) if k != victim)} fresh")

        # merged store must match an uninterrupted single-process sweep
        clean_path = os.path.join(tmp, "clean.jsonl")
        run_campaign(SMOKE_SPACE, name="ci-shard-smoke", mode="predict",
                     store=ResultStore(clean_path), executor="serial")
        diff = store_diff(ResultStore(clean_path).results(),
                          ResultStore(store_path).results())
        assert diff.drifted == [] and not diff.added and not diff.removed, \
            diff.summary()
        with open(clean_path, "rb") as a, open(store_path, "rb") as b:
            assert a.read() == b.read(), \
                "merged store is not byte-identical to the serial sweep"
        print(f"merged store matches the uninterrupted sweep "
              f"({diff.compared} records, 0 drift, byte-identical)")

        # merged fast path: a re-run is pure store hits, zero fresh work
        rerun = run_sharded_campaign(SMOKE_SPACE, shards=SHARDS,
                                     name="ci-shard-smoke", store=store_path)
        assert rerun.evaluated == 0 and rerun.store_hits == len(points), \
            f"re-run evaluated {rerun.evaluated} points instead of " \
            f"serving from the merged store"

    wall = time.perf_counter() - started
    print(f"sharding smoke: interrupt + resume + merge verified in "
          f"{wall:.1f}s ({len(points)} points, {SHARDS} shards)")
    assert wall < 30.0, f"sharding smoke took {wall:.1f}s (budget 30s)"
    return 0


if __name__ == "__main__":
    sys.exit(main())
