"""CI advisor smoke: a bounded advise() run against the persistent CI store.

Runs the advisor on the two golden applications (the Laplace directive
question and the stock-option pricing model) with a small candidate budget,
asserting the subsystem end to end: findings are produced, the top
recommendation measurably improves the predicted time, and every candidate
evaluation lands in the same ``benchmarks/results/`` store the campaign
smoke persists to — so advisor scenarios accumulate next to the campaign
scenarios and a re-run is served from the store.

Drift safety: the advisor re-interprets its baseline on every run and
compares it against the stored record; after a deliberate predictor change
it bypasses the stale store, re-evaluates every candidate fresh and
supersedes the old records (``report.store_refreshed``), so the committed
store lines move with the predictor instead of being frozen at the first
commit.

Usage:  PYTHONPATH=src python scripts/advisor_smoke.py [store-path]
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import advise  # noqa: E402
from repro.explore import ResultStore  # noqa: E402

DEFAULT_STORE = os.path.join(os.path.dirname(__file__), "..",
                             "benchmarks", "results", "smoke_campaign.jsonl")

#: (target, size, nprocs) golden scenarios; budget bounds the candidate count.
SCENARIOS = (
    ("laplace_block_block", 64, 4),
    ("finance", 256, 4),
)
BUDGET = 12


def main() -> int:
    store_path = sys.argv[1] if len(sys.argv) > 1 else os.path.normpath(DEFAULT_STORE)
    store = ResultStore(store_path)
    before = len(store)

    for target, size, nprocs in SCENARIOS:
        report = advise(target, size=size, nprocs=nprocs, store=store,
                        budget=BUDGET, simulate_top=0)
        assert report.findings, f"{target}: the advisor produced no findings"
        assert report.recommendations, \
            f"{target}: the advisor found no improving candidate"
        best = report.best()
        assert best.result.objective_us < report.baseline.objective_us, \
            f"{target}: top recommendation does not improve the predicted time"
        assert best.finding.kind, f"{target}: recommendation lost its finding"
        refreshed = " [store refreshed: predictor changed]" \
            if report.store_refreshed else ""
        print(f"{target}: {len(report.findings)} findings, best "
              f"{best.mutation.label()} at {best.predicted_speedup:.2f}x "
              f"({report.candidates_evaluated} evaluated, "
              f"{report.store_hits} store hits){refreshed}")

    print(f"store: {len(store)} records at {store_path} "
          f"({len(store) - before} new this run)")

    # a re-run must be served from the store: no fresh evaluations at all
    for target, size, nprocs in SCENARIOS:
        rerun = advise(target, size=size, nprocs=nprocs, store=store,
                       budget=BUDGET, simulate_top=0)
        assert rerun.candidates_evaluated == 0, \
            f"{target}: re-run evaluated {rerun.candidates_evaluated} " \
            f"candidates instead of hitting the store"
    print("re-run served entirely from the store")
    return 0


if __name__ == "__main__":
    sys.exit(main())
