#!/usr/bin/env python
"""Documentation checks for CI (wired into scripts/check.sh).

Two gates:

1. **Internal links resolve** — every relative markdown link in
   ``docs/*.md`` and ``README.md`` must point at an existing file or
   directory in the repository (anchors are stripped; external schemes are
   skipped).
2. **Public-API doctests pass** — the runnable examples in the docstrings
   of the public API surface (``repro.predict`` / ``repro.measure`` /
   ``repro.advise`` / ``run_campaign`` / ``ResultStore``) are executed with
   :mod:`doctest`.  (``python -m doctest`` cannot import package-relative
   modules directly, so this script drives the same machinery through
   ``doctest.testmod``.)

Exit status is non-zero on any broken link or failing doctest.
"""

from __future__ import annotations

import doctest
import importlib
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

#: Modules whose docstring examples are the documented public API.
DOCTEST_MODULES = (
    "repro",                    # package quickstart + predict + measure
    "repro.advisor.search",     # advise
    "repro.explore.campaign",   # run_campaign
    "repro.explore.sharding",   # partition_key / shard_of determinism
    "repro.explore.store",      # ResultStore
    "repro.obs",                # enable/span/counter facade
    "repro.serve.protocol",     # ServeOptions eager validation
    "repro.stages",             # compile/price stage caches
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _markdown_files() -> list[str]:
    files = [os.path.join(REPO_ROOT, "README.md")]
    docs = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs):
        files.extend(os.path.join(docs, name) for name in sorted(os.listdir(docs))
                     if name.endswith(".md"))
    return [f for f in files if os.path.exists(f)]


def check_links() -> list[str]:
    problems = []
    for path in _markdown_files():
        base = os.path.dirname(path)
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        for target in _LINK.findall(text):
            if "://" in target or target.startswith(("mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = os.path.normpath(os.path.join(base, relative))
            if not os.path.exists(resolved):
                problems.append(
                    f"{os.path.relpath(path, REPO_ROOT)}: broken link -> {target}")
    return problems


def run_doctests() -> list[str]:
    problems = []
    for name in DOCTEST_MODULES:
        module = importlib.import_module(name)
        result = doctest.testmod(module, verbose=False)
        status = "ok" if result.failed == 0 else "FAILED"
        print(f"  doctest {name}: {result.attempted} examples, "
              f"{result.failed} failures [{status}]")
        if result.failed:
            problems.append(f"{name}: {result.failed} doctest failure(s)")
        if result.attempted == 0:
            problems.append(f"{name}: no doctest examples found "
                            "(docstring examples were removed?)")
    return problems


def main() -> int:
    print("== docs check: internal markdown links")
    problems = check_links()
    for problem in problems:
        print(f"  {problem}")
    if not problems:
        print(f"  {len(_markdown_files())} files, all relative links resolve")

    print("== docs check: public-API doctests")
    problems.extend(run_doctests())

    if problems:
        print(f"docs check: {len(problems)} problem(s)")
        return 1
    print("docs check: all green")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
