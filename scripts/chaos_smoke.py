"""CI chaos smoke: a four-failure storm through a sharded campaign + server.

Exercises the whole ``repro.faults`` resilience contract end to end in
well under 30 seconds:

1. install a deterministic plan with one failure of each kind, each at a
   distinct site and pinned to a distinct shard — a crash (``shard.chunk``),
   a hang (``checkpoint.write``, caught by the heartbeat watchdog), a torn
   write (``store.append``), and a transient exception (``serve.compute``),
   all fire-once across processes via a shared ledger,
2. run a 4-shard campaign with an aggressive watchdog and assert it
   *completes* — every wounded shard is respawned, no interrupt surfaces,
3. keep a live HTTP server answering through the planned compute fault
   (the retry layer absorbs it; the client sees a plain 200) and assert
   ``/healthz`` stays ``ok``,
4. reconcile the counters against the plan: all four actions fired, the
   retry total matches, and
5. diff the merged store against a fault-free serial sweep — zero drift,
   byte-identical records.

Usage:  PYTHONPATH=src python scripts/chaos_smoke.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import faults  # noqa: E402
from repro.explore import (  # noqa: E402
    ResultStore,
    ScenarioSpace,
    run_campaign,
    run_sharded_campaign,
    store_diff,
)
from repro.serve import ServeOptions, ServerThread  # noqa: E402

SMOKE_SPACE = ScenarioSpace(
    apps=("laplace_block_star", "laplace_block_block"),
    sizes=(16, 32), proc_counts=(2, 4),
    machines=("ipsc860", "paragon"),
)

SHARDS = 4
CHUNK = 2


def chaos_plan(ledger: str) -> faults.FaultPlan:
    return faults.FaultPlan(seed=1994, ledger=ledger, actions=(
        faults.FaultAction(site="shard.chunk", action="crash", index=1,
                           match={"shard": "0"}),
        faults.FaultAction(site="checkpoint.write", action="delay",
                           delay_s=30.0, index=0,
                           match={"path": "*.shard-1.checkpoint.json"}),
        faults.FaultAction(site="store.append", action="torn_write",
                           index=2, match={"store": "*.shard-2.jsonl"}),
        faults.FaultAction(site="serve.compute", action="exception",
                           index=0, message="chaos-smoke transient"),
    ))


def main() -> int:
    started = time.perf_counter()
    points = SMOKE_SPACE.expand()

    with tempfile.TemporaryDirectory(prefix="repro-chaos-smoke-") as tmp:
        # the fault-free reference, before any plan is installed
        clean_path = os.path.join(tmp, "clean.jsonl")
        run_campaign(SMOKE_SPACE, name="ci-chaos-smoke", mode="predict",
                     store=ResultStore(clean_path), executor="serial")

        store_path = os.path.join(tmp, "chaos.jsonl")
        faults.install(chaos_plan(os.path.join(tmp, "ledger.txt")))
        try:
            run = run_sharded_campaign(
                SMOKE_SPACE, shards=SHARDS, chunk_size=CHUNK,
                name="ci-chaos-smoke", store=store_path,
                heartbeat_timeout_s=0.6, max_restarts=2)
            assert len(run.results) == len(points), \
                f"storm run produced {len(run.results)}/{len(points)} results"
            assert run.merge_diff is not None and run.merge_diff.drifted == []
            restarts = {o.shard: o.restarts for o in run.per_shard}
            assert restarts[0] >= 1 and restarts[1] >= 1 and restarts[2] >= 1, \
                f"expected shards 0-2 to be respawned, saw {restarts}"
            print(f"storm campaign completed: respawns {restarts}, "
                  f"{len(run.results)} points merged")

            # the live server answers through the planned transient
            with ServerThread(ServeOptions(port=0)) as (host, port):
                body = json.dumps({"app": "laplace_block_star", "size": 16,
                                   "nprocs": 4, "machine": "ipsc860"}).encode()
                req = urllib.request.Request(
                    f"http://{host}:{port}/predict", data=body)
                with urllib.request.urlopen(req, timeout=30) as resp:
                    assert resp.status == 200
                    payload = json.loads(resp.read())
                assert payload["served_from"] == "computed", payload
                with urllib.request.urlopen(
                        f"http://{host}:{port}/healthz", timeout=30) as resp:
                    health = json.loads(resp.read())
                assert health["status"] == "ok", health
                assert health["resilience"]["retry_total"] == 1, health
            print("live server absorbed the compute fault: 200 computed, "
                  "healthz ok after 1 retry")

            # counters reconcile: all four actions fired exactly once
            fired = faults.fired()
            assert len(fired) == 4, f"expected 4 fired actions, got {fired}"
            assert {aid.split(":")[1] for aid in fired} == set(faults.SITES)
            assert faults.retry_total() == 1, faults.retry_total()
        finally:
            faults.clear()

        diff = store_diff(ResultStore(clean_path).results(),
                          ResultStore(store_path).results())
        assert diff.drifted == [] and not diff.added and not diff.removed, \
            diff.summary()
        with open(clean_path, "rb") as a, open(store_path, "rb") as b:
            assert a.read() == b.read(), \
                "storm-merged store is not byte-identical to the serial sweep"
        print(f"merged store matches the fault-free sweep "
              f"({diff.compared} records, 0 drift, byte-identical)")

    wall = time.perf_counter() - started
    print(f"chaos smoke: crash + hang + torn write + transient survived in "
          f"{wall:.1f}s ({len(points)} points, {SHARDS} shards)")
    assert wall < 30.0, f"chaos smoke took {wall:.1f}s (budget 30s)"
    return 0


if __name__ == "__main__":
    sys.exit(main())
